//! Proof sinks: zero-cost-when-disabled DRAT emission from the solvers.
//!
//! Every solver body is generic over a [`ProofSink`] exactly the way it
//! is generic over `Probe`: [`NoProof`] is a zero-sized type whose
//! methods are empty and whose [`ProofSink::enabled`] is `false`, so the
//! plain `solve()` path monomorphizes every emission call away — the
//! `probe` criterion bench guards that the certified machinery costs
//! nothing when nobody is listening.
//!
//! What the solvers emit:
//!
//! - **CDCL** emits every learnt clause (1UIP with self-subsumption
//!   minimization — RUP by construction, in emission order), every
//!   `reduce_db` deletion, the empty clause on a level-0 conflict, and —
//!   for assumption solves — the failing-subset clause
//!   `{¬l : l ∈ failed_assumptions}`, which is an ordinary RUP
//!   consequence of the clause database.
//! - **DPLL and the backtracking solvers** lower their decision tree to
//!   resolution: each refuted subtree under decision prefix `D` emits
//!   the clause `¬D` in post-order. A leaf conflict is RUP directly; an
//!   interior `¬D` is RUP because the two child clauses
//!   `¬(D ∪ {v})`/`¬(D ∪ {¬v})` become units under `D`; the root emits
//!   the empty clause.
//! - All solvers report the model on SAT.
//!
//! The sink records clauses; interpretation (DRAT text, campaign event
//! streams) belongs to the sink implementation. [`DratProof`] renders
//! standard DRAT so proofs stay checkable by external tools.

use atpg_easy_cnf::Lit;

/// Receives proof steps from a solver. Mirrors `Probe`'s design: object-
/// safe, with a [`ProofSink::enabled`] switch that lets generic solver
/// bodies skip bookkeeping (like decision-prefix maintenance) entirely
/// when the sink is [`NoProof`].
pub trait ProofSink {
    /// Whether emission is live. `false` lets monomorphized solver
    /// bodies eliminate proof bookkeeping as dead code.
    fn enabled(&self) -> bool {
        true
    }

    /// A clause the solver derived (a RUP consequence of the database).
    fn add_clause(&mut self, lits: &[Lit]);

    /// A clause the solver discarded.
    fn delete_clause(&mut self, lits: &[Lit]);

    /// The model of a SAT verdict (indexed by variable).
    fn model(&mut self, model: &[bool]);
}

/// The disabled sink: a zero-sized type whose calls vanish under
/// monomorphization.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProof;

// The whole point: attaching NoProof must add zero bytes and zero work.
const _: () = assert!(std::mem::size_of::<NoProof>() == 0);

impl ProofSink for NoProof {
    fn enabled(&self) -> bool {
        false
    }

    fn add_clause(&mut self, _lits: &[Lit]) {}

    fn delete_clause(&mut self, _lits: &[Lit]) {}

    fn model(&mut self, _model: &[bool]) {}
}

/// One recorded proof step over DIMACS literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofStep {
    /// `true` for a deletion step.
    pub delete: bool,
    /// DIMACS literals (sign = polarity, variable index + 1).
    pub lits: Vec<i64>,
}

/// A sink that accumulates DRAT steps (and the SAT model, if any) in
/// memory, tracking the rendered byte size as it goes so telemetry can
/// report proof weight without re-rendering.
#[derive(Debug, Clone, Default)]
pub struct DratProof {
    steps: Vec<ProofStep>,
    model: Option<Vec<bool>>,
    bytes: u64,
}

fn dimacs(l: Lit) -> i64 {
    let v = l.var().index() as i64 + 1;
    if l.asserted_value() {
        v
    } else {
        -v
    }
}

/// Rendered length of one decimal integer plus its trailing space.
fn digits(mut x: i64) -> u64 {
    let mut n = if x < 0 { 2 } else { 1 }; // sign + trailing space
    x = x.abs();
    loop {
        n += 1;
        x /= 10;
        if x == 0 {
            return n;
        }
    }
}

impl DratProof {
    /// An empty proof.
    pub fn new() -> Self {
        DratProof::default()
    }

    /// The recorded steps, in emission order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// The recorded SAT model, if the solve ended SAT.
    pub fn recorded_model(&self) -> Option<&[bool]> {
        self.model.as_deref()
    }

    /// Size of [`DratProof::render`]'s output, maintained incrementally.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Renders the steps as standard DRAT text (models are not part of
    /// the DRAT format and are not rendered).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.steps {
            if s.delete {
                out.push_str("d ");
            }
            for l in &s.lits {
                let _ = write!(out, "{l} ");
            }
            out.push_str("0\n");
        }
        out
    }

    fn record(&mut self, delete: bool, lits: &[Lit]) {
        let lits: Vec<i64> = lits.iter().map(|&l| dimacs(l)).collect();
        self.bytes += lits.iter().map(|&l| digits(l)).sum::<u64>()
            + 2 // "0\n"
            + if delete { 2 } else { 0 }; // "d "
        self.steps.push(ProofStep { delete, lits });
    }
}

impl ProofSink for DratProof {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.record(false, lits);
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.record(true, lits);
    }

    fn model(&mut self, model: &[bool]) {
        self.model = Some(model.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_cnf::Var;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::with_value(Var::from_index(i), pos)
    }

    #[test]
    fn drat_rendering_and_byte_count() {
        let mut p = DratProof::new();
        p.add_clause(&[lit(0, true), lit(11, false)]);
        p.delete_clause(&[lit(0, true)]);
        p.add_clause(&[]);
        p.model(&[true, false]);
        let text = p.render();
        assert_eq!(text, "1 -12 0\nd 1 0\n0\n");
        assert_eq!(p.bytes(), text.len() as u64);
        assert_eq!(p.steps().len(), 3);
        assert_eq!(p.recorded_model(), Some(&[true, false][..]));
    }

    #[test]
    fn noproof_is_disabled_and_inert() {
        let mut n = NoProof;
        assert!(!n.enabled());
        n.add_clause(&[lit(3, true)]);
        n.delete_clause(&[]);
        n.model(&[true]);
    }
}
