//! The paper's Algorithm 1: caching-based backtracking.
//!
//! Simple backtracking with a fixed variable order, except that whenever
//! the search backtracks from an unsatisfiable sub-formula, the sub-formula
//! is cached; before a sub-formula is expanded it is looked up and, if
//! present, diagnosed UNSAT immediately. Sub-formulas are identified by
//! their residual clause set (satisfied clauses removed, false literals
//! removed, duplicate clauses merged), per footnote 2 of the paper.
//!
//! Theorem 4.1: on a CIRCUIT-SAT formula `f(C)` this solver expands
//! `O(n · 2^(2·k_fo·W(C,h)))` nodes under ordering `h`.

use std::collections::HashMap;
use std::time::Instant;

use atpg_easy_cnf::{CnfFormula, Lit, Var};

use crate::simple::{check_order, emit_refutation, Residual};
use crate::{
    probe_outcome, Deadline, Limits, NoProbe, NoProof, Outcome, Probe, ProofSink, Solution, Solver,
    SolverStats,
};

/// What happened at one backtracking-tree node (see [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The assignment produced a null clause: immediate backtrack.
    Conflict,
    /// The residual sub-formula was found in the UNSAT cache.
    CacheHit,
    /// The node was expanded (children follow at depth + 1).
    Expanded,
    /// Every clause became satisfied: SAT leaf.
    Satisfied,
}

/// One node of the backtracking tree, as drawn in the paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Depth in the tree (0 = first variable of the ordering).
    pub depth: usize,
    /// The variable assigned at this node.
    pub var: Var,
    /// The value tried.
    pub value: bool,
    /// How the node resolved.
    pub outcome: TraceOutcome,
}

/// Renders a trace as an indented tree, one line per node.
pub fn render_trace(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for e in events {
        let marker = match e.outcome {
            TraceOutcome::Conflict => "✗ conflict",
            TraceOutcome::CacheHit => "⊘ cache hit",
            TraceOutcome::Expanded => "",
            TraceOutcome::Satisfied => "✓ SAT",
        };
        let _ = writeln!(
            s,
            "{}{}={} {}",
            "  ".repeat(e.depth),
            e.var,
            u8::from(e.value),
            marker
        );
    }
    s
}

/// Caching-based backtracking (the paper's Algorithm 1).
///
/// The cache is "perfect" in the sense of the paper's analysis: lookups and
/// insertions hash a 128-bit fingerprint of the residual clause set and
/// then compare the canonical residual key exactly, so each access is
/// O(active clauses) — constant per node for bounded-width formulas — and
/// a fingerprint collision can never smuggle in a wrong UNSAT verdict.
#[derive(Debug, Clone, Default)]
pub struct CachingBacktracking {
    order: Option<Vec<Var>>,
    limits: Limits,
    tracing: bool,
    trace: Vec<TraceEvent>,
    stats: SolverStats,
}

impl CachingBacktracking {
    /// Solver with index variable order and no limits.
    pub fn new() -> Self {
        CachingBacktracking::default()
    }

    /// Sets the static variable order `h` (a permutation of all variables).
    ///
    /// # Panics
    ///
    /// At solve time, panics if the order is not a permutation.
    pub fn with_order(mut self, order: Vec<Var>) -> Self {
        self.order = Some(order);
        self
    }

    /// Sets a resource budget.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Records every backtracking-tree node of the next solve; read it
    /// back with [`Self::trace`]. Tracing costs memory proportional to
    /// the tree, so leave it off for experiments.
    pub fn with_trace(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// The backtracking tree of the most recent solve (empty unless
    /// [`Self::with_trace`] was set).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }
}

enum Verdict {
    Sat,
    Unsat,
    Aborted,
}

/// The UNSAT sub-formula cache: fingerprint-indexed buckets of canonical
/// residual keys.
///
/// A bare `HashSet<u128>` of fingerprints — the previous implementation —
/// silently returns a wrong UNSAT verdict when two distinct residual
/// clause sets collide on the 128-bit hash. Here the fingerprint only
/// selects a bucket; a hit additionally requires an exact match on the
/// canonical key ([`Residual::canonical_key`]), so collisions cost one
/// extra slice comparison instead of soundness.
#[derive(Debug, Clone, Default)]
struct UnsatCache {
    buckets: HashMap<u128, Vec<Box<[u32]>>>,
    entries: usize,
}

impl UnsatCache {
    /// Whether `key` was previously inserted (under `fingerprint`).
    fn contains(&self, fingerprint: u128, key: &[u32]) -> bool {
        self.buckets
            .get(&fingerprint)
            .is_some_and(|keys| keys.iter().any(|k| **k == *key))
    }

    /// Inserts `key` under `fingerprint`; `false` if it was already present.
    fn insert(&mut self, fingerprint: u128, key: Box<[u32]>) -> bool {
        let bucket = self.buckets.entry(fingerprint).or_default();
        if bucket.iter().any(|k| **k == *key) {
            return false;
        }
        bucket.push(key);
        self.entries += 1;
        true
    }

    /// Number of cached UNSAT sub-formulas (exact keys, not buckets).
    fn len(&self) -> usize {
        self.entries
    }
}

/// Everything one backtracking search carries besides the residual: the
/// ordering, cache, budgets and observers.
struct Search<'a, P: Probe + ?Sized, S: ProofSink + ?Sized> {
    order: Vec<Var>,
    cache: UnsatCache,
    stats: &'a mut SolverStats,
    limits: Limits,
    deadline: Deadline,
    trace: Option<&'a mut Vec<TraceEvent>>,
    probe: &'a mut P,
    sink: &'a mut S,
    /// Decision literals on the current branch (maintained only when the
    /// sink is enabled), for the decision-tree-to-resolution lowering.
    prefix: Vec<Lit>,
}

impl<P: Probe + ?Sized, S: ProofSink + ?Sized> Search<'_, P, S> {
    fn record(&mut self, depth: usize, v: Var, value: bool, outcome: TraceOutcome) {
        if let Some(events) = &mut self.trace {
            events.push(TraceEvent {
                depth,
                var: v,
                value,
                outcome,
            });
        }
    }

    fn cache_sat(&mut self, res: &mut Residual, depth: usize) -> Verdict {
        if res.all_satisfied() || depth == self.order.len() {
            return Verdict::Sat;
        }
        let v = self.order[depth];
        let mut aborted = false;
        for value in [false, true] {
            // Deadline first, before the node is counted: an already-
            // expired deadline must abort with zero decisions on the books.
            self.probe.deadline_check();
            if self.deadline.expired() {
                return Verdict::Aborted;
            }
            self.stats.nodes += 1;
            self.stats.decisions += 1;
            self.probe.decision(depth);
            if let Some(max) = self.limits.max_nodes {
                if self.stats.nodes > max {
                    return Verdict::Aborted;
                }
            }
            let decision = Lit::with_value(v, value);
            res.assign(v, value);
            if res.has_conflict() {
                self.stats.conflicts += 1;
                self.probe.conflict();
                self.record(depth, v, value, TraceOutcome::Conflict);
                if self.sink.enabled() {
                    emit_refutation(self.sink, &self.prefix, Some(decision));
                }
            } else if res.all_satisfied() {
                self.record(depth, v, value, TraceOutcome::Satisfied);
                return Verdict::Sat;
            } else {
                let fingerprint = res.state_fingerprint();
                let key = res.canonical_key();
                // A cache hit serves an UNSAT verdict without a derivation,
                // so under an enabled proof sink the hit-prune branch is
                // skipped: the sub-formula is re-expanded and its refutation
                // re-derived (and emitted). Verdicts are unchanged; only
                // the node counts differ.
                if !self.sink.enabled() && self.cache.contains(fingerprint, &key) {
                    self.stats.cache_hits += 1;
                    self.probe.cache_hit();
                    self.record(depth, v, value, TraceOutcome::CacheHit);
                } else {
                    self.probe.cache_miss();
                    self.record(depth, v, value, TraceOutcome::Expanded);
                    if self.sink.enabled() {
                        self.prefix.push(decision);
                    }
                    let verdict = self.cache_sat(res, depth + 1);
                    if self.sink.enabled() {
                        self.prefix.pop();
                    }
                    match verdict {
                        Verdict::Unsat => {
                            if self.cache.insert(fingerprint, key) {
                                self.probe.cache_insert();
                            }
                        }
                        Verdict::Sat => return Verdict::Sat,
                        Verdict::Aborted => {
                            aborted = true;
                            res.unassign(v);
                            break;
                        }
                    }
                }
            }
            res.unassign(v);
            self.probe.backtrack(depth);
        }
        if aborted {
            Verdict::Aborted
        } else {
            if self.sink.enabled() {
                emit_refutation(self.sink, &self.prefix, None);
            }
            Verdict::Unsat
        }
    }
}

impl CachingBacktracking {
    fn solve_with<P: Probe + ?Sized, S: ProofSink + ?Sized>(
        &mut self,
        formula: &CnfFormula,
        probe: &mut P,
        sink: &mut S,
    ) -> Solution {
        // Reset the persistent counters so a reused solver starts clean.
        self.stats = SolverStats::default();
        let start = probe.enabled().then(Instant::now);
        probe.instance_begin(formula.num_vars(), formula.num_clauses());
        let order: Vec<Var> = match &self.order {
            Some(o) => {
                check_order(o, formula.num_vars());
                o.clone()
            }
            None => (0..formula.num_vars()).map(Var::from_index).collect(),
        };
        let mut res = Residual::new(formula);
        self.trace.clear();
        let outcome = if res.has_conflict() {
            // An empty clause is already an axiom; re-deriving it is RUP.
            sink.add_clause(&[]);
            Outcome::Unsat
        } else {
            let mut search = Search {
                order,
                cache: UnsatCache::default(),
                stats: &mut self.stats,
                limits: self.limits,
                deadline: Deadline::start(&self.limits),
                trace: self.tracing.then_some(&mut self.trace),
                probe: &mut *probe,
                sink: &mut *sink,
                prefix: Vec::new(),
            };
            let verdict = search.cache_sat(&mut res, 0);
            search.stats.cache_entries = search.cache.len() as u64;
            match verdict {
                Verdict::Sat => {
                    let model = res.model();
                    sink.model(&model);
                    Outcome::Sat(model)
                }
                Verdict::Unsat => Outcome::Unsat,
                Verdict::Aborted => Outcome::Aborted,
            }
        };
        probe.instance_end(
            probe_outcome(&outcome),
            start.map(|s| s.elapsed()).unwrap_or_default(),
        );
        Solution {
            outcome,
            stats: self.stats,
        }
    }
}

impl Solver for CachingBacktracking {
    fn solve(&mut self, formula: &CnfFormula) -> Solution {
        self.solve_with(formula, &mut NoProbe, &mut NoProof)
    }

    fn solve_probed(&mut self, formula: &CnfFormula, probe: &mut dyn Probe) -> Solution {
        self.solve_with(formula, probe, &mut NoProof)
    }

    fn solve_certified(
        &mut self,
        formula: &CnfFormula,
        probe: &mut dyn Probe,
        sink: &mut dyn ProofSink,
    ) -> Solution {
        // Dispatch on the sink once: the disabled case re-monomorphizes
        // at the `NoProof` ZST so proof hooks compile away exactly as in
        // `solve_probed`, instead of paying a vtable `enabled()` check
        // per emission site.
        if sink.enabled() {
            self.solve_with(formula, probe, sink)
        } else {
            self.solve_probed(formula, probe)
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "caching-backtracking"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimpleBacktracking;
    use atpg_easy_cnf::Lit;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::with_value(Var::from_index(i), pos)
    }

    /// The paper's Formula 4.1 (Figure 4(a) CIRCUIT-SAT instance), with the
    /// variable order A = (b, c, f, a, h, d, e, g, i) used in Figure 5.
    /// Variables: b=0 c=1 f=2 a=3 h=4 d=5 e=6 g=7 i=8.
    fn formula_41() -> (CnfFormula, Vec<Var>) {
        let (b, c, f, a, h, d, e, g, i) = (0, 1, 2, 3, 4, 5, 6, 7, 8);
        let mut cnf = CnfFormula::new(9);
        // f = OR(!b, c): (b + f)(c̄ + f)(b̄ + c + f̄) — a polarity variant of
        // the paper's first gate; structure and clause counts match.
        cnf.add_clause(vec![lit(b, true), lit(f, true)]);
        cnf.add_clause(vec![lit(c, false), lit(f, true)]);
        cnf.add_clause(vec![lit(b, false), lit(c, true), lit(f, false)]);
        // g = NAND(d, e): (d + g)(e + g)(d̄ + ē + ḡ)
        cnf.add_clause(vec![lit(d, true), lit(g, true)]);
        cnf.add_clause(vec![lit(e, true), lit(g, true)]);
        cnf.add_clause(vec![lit(d, false), lit(e, false), lit(g, false)]);
        // h = AND(a, f): (a + h̄)(f + h̄)(ā + f̄ + h)
        cnf.add_clause(vec![lit(a, true), lit(h, false)]);
        cnf.add_clause(vec![lit(f, true), lit(h, false)]);
        cnf.add_clause(vec![lit(a, false), lit(f, false), lit(h, true)]);
        // i = AND(h, g): (h + ī)(g + ī)(h̄ + ḡ + i)
        cnf.add_clause(vec![lit(h, true), lit(i, false)]);
        cnf.add_clause(vec![lit(g, true), lit(i, false)]);
        cnf.add_clause(vec![lit(h, false), lit(g, false), lit(i, true)]);
        // output: (i)
        cnf.add_clause(vec![lit(i, true)]);
        let order = [b, c, f, a, h, d, e, g, i]
            .into_iter()
            .map(Var::from_index)
            .collect();
        (cnf, order)
    }

    #[test]
    fn formula_41_is_sat_and_model_checks() {
        let (f, order) = formula_41();
        let sol = CachingBacktracking::new().with_order(order).solve(&f);
        let model = sol.outcome.model().expect("Formula 4.1 is satisfiable");
        assert!(f.eval_complete(model));
    }

    #[test]
    fn cache_prunes_on_unsat_instance() {
        // Make Formula 4.1 UNSAT by also requiring h false and f true and
        // a true (h = AND(a, f) forces h true: contradiction).
        let (mut f, order) = formula_41();
        f.add_clause(vec![lit(4, false)]); // !h
        f.add_clause(vec![lit(2, true)]); // f
        f.add_clause(vec![lit(3, true)]); // a
        let simple = SimpleBacktracking::new()
            .with_order(order.clone())
            .solve(&f);
        let cached = CachingBacktracking::new().with_order(order).solve(&f);
        assert!(simple.outcome.is_unsat());
        assert!(cached.outcome.is_unsat());
        assert!(cached.stats.nodes <= simple.stats.nodes);
    }

    #[test]
    fn cache_hits_occur_on_shared_subformulas() {
        // Chain of disconnected UNSAT blocks forces the same residual
        // sub-formula to appear under many prefixes.
        //   block: (x ∨ y)(¬x ∨ y)(x ∨ ¬y)(¬x ∨ ¬y)  over trailing vars,
        //   with irrelevant leading variables z0..z3.
        let mut f = CnfFormula::new(6);
        for (a, b) in [(true, true), (false, true), (true, false), (false, false)] {
            f.add_clause(vec![lit(4, a), lit(5, b)]);
        }
        let sol = CachingBacktracking::new().solve(&f);
        assert!(sol.outcome.is_unsat());
        assert!(sol.stats.cache_hits > 0, "{:?}", sol.stats);
        assert!(sol.stats.cache_entries > 0);
        // Simple backtracking explores the UNSAT block once per prefix.
        let simple = SimpleBacktracking::new().solve(&f);
        assert!(sol.stats.nodes < simple.stats.nodes);
    }

    #[test]
    fn budget_aborts() {
        let mut f = CnfFormula::new(20);
        // Unsatisfiable parity-ish instance that needs deep search.
        for i in 0..19 {
            f.add_clause(vec![lit(i, true), lit(i + 1, true)]);
            f.add_clause(vec![lit(i, false), lit(i + 1, false)]);
        }
        f.add_clause(vec![lit(0, true)]);
        f.add_clause(vec![lit(19, true)]);
        let sol = CachingBacktracking::new()
            .with_limits(Limits::nodes(3))
            .solve(&f);
        assert_eq!(sol.outcome, Outcome::Aborted);
    }

    #[test]
    fn empty_formula_sat() {
        let f = CnfFormula::new(0);
        assert!(CachingBacktracking::new().solve(&f).outcome.is_sat());
    }

    #[test]
    fn trace_records_the_tree() {
        let (f, order) = formula_41();
        let mut solver = CachingBacktracking::new().with_order(order).with_trace();
        let sol = solver.solve(&f);
        assert!(sol.outcome.is_sat());
        let trace = solver.trace();
        assert_eq!(trace.len() as u64, sol.stats.nodes, "one event per node");
        let hits = trace
            .iter()
            .filter(|e| e.outcome == crate::TraceOutcome::CacheHit)
            .count() as u64;
        assert_eq!(hits, sol.stats.cache_hits);
        assert!(trace
            .iter()
            .any(|e| e.outcome == crate::TraceOutcome::Satisfied));
        let rendered = crate::render_trace(trace);
        assert!(rendered.contains("SAT"), "{rendered}");
        assert!(rendered.lines().count() == trace.len());
    }

    #[test]
    fn forced_fingerprint_collision_is_not_a_hit() {
        // Two different residual clause sets filed under the SAME forced
        // fingerprint — the exact situation where the old HashSet<u128>
        // cache answered a wrong UNSAT. The canonical keys must keep the
        // entries apart.
        let mut f = CnfFormula::new(2);
        f.add_clause(vec![lit(0, true), lit(1, true)]);
        let key_a = Residual::new(&f).canonical_key();
        let mut g = CnfFormula::new(2);
        g.add_clause(vec![lit(0, false), lit(1, false)]);
        let key_b = Residual::new(&g).canonical_key();
        assert_ne!(key_a, key_b, "test needs two distinct residuals");

        let forced_fp: u128 = 0xDEAD_BEEF;
        let mut cache = UnsatCache::default();
        assert!(cache.insert(forced_fp, key_a.clone()));
        assert!(cache.contains(forced_fp, &key_a));
        assert!(
            !cache.contains(forced_fp, &key_b),
            "a fingerprint collision must not report a cache hit"
        );
        assert!(
            cache.insert(forced_fp, key_b.clone()),
            "colliding key coexists"
        );
        assert!(cache.contains(forced_fp, &key_b));
        assert_eq!(cache.len(), 2, "both residuals cached under one bucket");
        assert!(!cache.insert(forced_fp, key_a), "re-insert is idempotent");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn tracing_off_by_default() {
        let (f, _) = formula_41();
        let mut solver = CachingBacktracking::new();
        solver.solve(&f);
        assert!(solver.trace().is_empty());
    }
}
