//! DPLL: backtracking with unit propagation.
//!
//! The classic refinement sitting between the paper's simple backtracking
//! model and the modern CDCL solvers inside tools like TEGUS or GRASP.
//! Used by the solver-ablation experiments (S4.1 in DESIGN.md).

use std::time::Instant;

use atpg_easy_cnf::{CnfFormula, Lit, Var};

use crate::{
    probe_outcome, Deadline, Limits, NoProbe, NoProof, Outcome, Probe, ProofSink, Solution, Solver,
    SolverStats,
};

/// DPLL with unit propagation and static branching order.
#[derive(Debug, Clone, Default)]
pub struct Dpll {
    order: Option<Vec<Var>>,
    limits: Limits,
    stats: SolverStats,
}

impl Dpll {
    /// Solver with index branching order and no limits.
    pub fn new() -> Self {
        Dpll::default()
    }

    /// Sets the static branching order.
    pub fn with_order(mut self, order: Vec<Var>) -> Self {
        self.order = Some(order);
        self
    }

    /// Sets a resource budget.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }
}

struct State {
    clauses: Vec<Vec<Lit>>,
    occ: Vec<Vec<(usize, Lit)>>,
    true_count: Vec<u32>,
    unassigned_count: Vec<u32>,
    open_clauses: usize,
    assign: Vec<Option<bool>>,
    trail: Vec<Var>,
}

enum Verdict {
    Sat,
    Unsat,
    Aborted,
}

impl State {
    fn new(f: &CnfFormula) -> Self {
        let n = f.num_vars();
        let m = f.num_clauses();
        let mut s = State {
            clauses: f.clauses().to_vec(),
            occ: vec![Vec::new(); n],
            true_count: vec![0; m],
            unassigned_count: vec![0; m],
            open_clauses: m,
            assign: vec![None; n],
            trail: Vec::new(),
        };
        for (ci, clause) in s.clauses.iter().enumerate() {
            s.unassigned_count[ci] = clause.len() as u32;
            for &l in clause {
                s.occ[l.var().index()].push((ci, l));
            }
        }
        s
    }

    /// Assigns and records on the trail. Returns `false` on conflict.
    fn assign(&mut self, var: Var, value: bool) -> bool {
        self.assign[var.index()] = Some(value);
        self.trail.push(var);
        let mut ok = true;
        for k in 0..self.occ[var.index()].len() {
            let (ci, l) = self.occ[var.index()][k];
            self.unassigned_count[ci] -= 1;
            if l.asserted_value() == value {
                if self.true_count[ci] == 0 {
                    self.open_clauses -= 1;
                }
                self.true_count[ci] += 1;
            } else if self.true_count[ci] == 0 && self.unassigned_count[ci] == 0 {
                ok = false;
            }
        }
        ok
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let var = self.trail.pop().expect("trail non-empty");
            let value = self.assign[var.index()].expect("assigned");
            for k in 0..self.occ[var.index()].len() {
                let (ci, l) = self.occ[var.index()][k];
                if l.asserted_value() == value {
                    self.true_count[ci] -= 1;
                    if self.true_count[ci] == 0 {
                        self.open_clauses += 1;
                    }
                }
                self.unassigned_count[ci] += 1;
            }
            self.assign[var.index()] = None;
        }
    }

    /// Propagates unit clauses to fixpoint. Returns `false` on conflict.
    ///
    /// Ticks `deadline` once per propagated literal; on expiry the fixpoint
    /// loop stops early (no conflict is reported) and the caller's deadline
    /// check aborts the search.
    fn propagate<P: Probe + ?Sized>(
        &mut self,
        stats: &mut SolverStats,
        deadline: &mut Deadline,
        probe: &mut P,
    ) -> bool {
        loop {
            let mut unit: Option<Lit> = None;
            for ci in 0..self.clauses.len() {
                if self.true_count[ci] == 0 {
                    match self.unassigned_count[ci] {
                        0 => return false,
                        1 => {
                            let l = self.clauses[ci]
                                .iter()
                                .copied()
                                .find(|l| self.assign[l.var().index()].is_none())
                                .expect("one unassigned literal");
                            unit = Some(l);
                            break;
                        }
                        _ => {}
                    }
                }
            }
            match unit {
                None => return true,
                Some(l) => {
                    stats.propagations += 1;
                    probe.propagation();
                    probe.deadline_check();
                    if deadline.expired() {
                        return true;
                    }
                    if !self.assign(l.var(), l.asserted_value()) {
                        return false;
                    }
                }
            }
        }
    }
}

use crate::simple::emit_refutation;

#[allow(clippy::too_many_arguments)]
fn rec<P: Probe + ?Sized, S: ProofSink + ?Sized>(
    st: &mut State,
    order: &[Var],
    depth: usize,
    stats: &mut SolverStats,
    limits: &Limits,
    deadline: &mut Deadline,
    probe: &mut P,
    sink: &mut S,
    prefix: &mut Vec<Lit>,
) -> Verdict {
    let mark = st.trail.len();
    if !st.propagate(stats, deadline, probe) {
        stats.conflicts += 1;
        probe.conflict();
        st.undo_to(mark);
        if sink.enabled() {
            emit_refutation(sink, prefix, None);
        }
        return Verdict::Unsat;
    }
    probe.deadline_check();
    if deadline.expired() {
        st.undo_to(mark);
        return Verdict::Aborted;
    }
    if st.open_clauses == 0 {
        return Verdict::Sat;
    }
    let Some(&v) = order.iter().find(|v| st.assign[v.index()].is_none()) else {
        // Every variable assigned without conflict: all clauses satisfied.
        return Verdict::Sat;
    };
    for value in [false, true] {
        stats.nodes += 1;
        stats.decisions += 1;
        probe.decision(depth);
        if let Some(max) = limits.max_nodes {
            if stats.nodes > max {
                st.undo_to(mark);
                return Verdict::Aborted;
            }
        }
        let decision_mark = st.trail.len();
        let decision = Lit::with_value(v, value);
        let ok = st.assign(v, value);
        if ok {
            if sink.enabled() {
                prefix.push(decision);
            }
            let verdict = rec(
                st,
                order,
                depth + 1,
                stats,
                limits,
                deadline,
                probe,
                sink,
                prefix,
            );
            if sink.enabled() {
                prefix.pop();
            }
            match verdict {
                Verdict::Unsat => {}
                other => return other,
            }
        } else {
            stats.conflicts += 1;
            probe.conflict();
            if sink.enabled() {
                emit_refutation(sink, prefix, Some(decision));
            }
        }
        st.undo_to(decision_mark);
        probe.backtrack(depth);
    }
    st.undo_to(mark);
    // Both branches refuted: their two emitted clauses become units under
    // the prefix, so `¬prefix` is RUP (empty at the root).
    if sink.enabled() {
        emit_refutation(sink, prefix, None);
    }
    Verdict::Unsat
}

impl Dpll {
    fn solve_with<P: Probe + ?Sized, S: ProofSink + ?Sized>(
        &mut self,
        formula: &CnfFormula,
        probe: &mut P,
        sink: &mut S,
    ) -> Solution {
        // Reset the persistent counters so a reused solver starts clean.
        self.stats = SolverStats::default();
        let start = probe.enabled().then(Instant::now);
        probe.instance_begin(formula.num_vars(), formula.num_clauses());
        let order: Vec<Var> = match &self.order {
            Some(o) => {
                crate::simple::check_order(o, formula.num_vars());
                o.clone()
            }
            None => (0..formula.num_vars()).map(Var::from_index).collect(),
        };
        let mut st = State::new(formula);
        let outcome = if formula.has_empty_clause() {
            // The empty clause is an axiom; re-deriving it is trivially RUP.
            sink.add_clause(&[]);
            Outcome::Unsat
        } else {
            let mut deadline = Deadline::start(&self.limits);
            let mut prefix: Vec<Lit> = Vec::new();
            let verdict = rec(
                &mut st,
                &order,
                0,
                &mut self.stats,
                &self.limits,
                &mut deadline,
                probe,
                sink,
                &mut prefix,
            );
            match verdict {
                Verdict::Sat => {
                    let model: Vec<bool> = st.assign.iter().map(|v| v.unwrap_or(false)).collect();
                    sink.model(&model);
                    Outcome::Sat(model)
                }
                Verdict::Unsat => Outcome::Unsat,
                Verdict::Aborted => Outcome::Aborted,
            }
        };
        probe.instance_end(
            probe_outcome(&outcome),
            start.map(|s| s.elapsed()).unwrap_or_default(),
        );
        Solution {
            outcome,
            stats: self.stats,
        }
    }
}

impl Solver for Dpll {
    fn solve(&mut self, formula: &CnfFormula) -> Solution {
        self.solve_with(formula, &mut NoProbe, &mut NoProof)
    }

    fn solve_probed(&mut self, formula: &CnfFormula, probe: &mut dyn Probe) -> Solution {
        self.solve_with(formula, probe, &mut NoProof)
    }

    fn solve_certified(
        &mut self,
        formula: &CnfFormula,
        probe: &mut dyn Probe,
        sink: &mut dyn ProofSink,
    ) -> Solution {
        // Dispatch on the sink once: the disabled case re-monomorphizes
        // at the `NoProof` ZST so proof hooks compile away exactly as in
        // `solve_probed`, instead of paying a vtable `enabled()` check
        // per emission site.
        if sink.enabled() {
            self.solve_with(formula, probe, sink)
        } else {
            self.solve_probed(formula, probe)
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "dpll"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::with_value(Var::from_index(i), pos)
    }

    #[test]
    fn unit_propagation_chains() {
        // x0, x0→x1, x1→x2, x2→x3: solved without a single decision.
        let mut f = CnfFormula::new(4);
        f.add_clause(vec![lit(0, true)]);
        for i in 0..3 {
            f.add_clause(vec![lit(i, false), lit(i + 1, true)]);
        }
        let sol = Dpll::new().solve(&f);
        let model = sol.outcome.model().expect("SAT").to_vec();
        assert!(model.iter().all(|&b| b));
        assert_eq!(sol.stats.decisions, 0);
        assert_eq!(sol.stats.propagations, 4);
    }

    #[test]
    fn unsat_by_propagation() {
        let mut f = CnfFormula::new(2);
        f.add_clause(vec![lit(0, true)]);
        f.add_clause(vec![lit(0, false), lit(1, true)]);
        f.add_clause(vec![lit(0, false), lit(1, false)]);
        let sol = Dpll::new().solve(&f);
        assert!(sol.outcome.is_unsat());
        assert_eq!(sol.stats.decisions, 0);
    }

    #[test]
    fn decisions_needed() {
        let mut f = CnfFormula::new(3);
        f.add_clause(vec![lit(0, true), lit(1, true), lit(2, true)]);
        let sol = Dpll::new().solve(&f);
        assert!(sol.outcome.is_sat());
        assert!(sol.stats.decisions >= 1);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut f = CnfFormula::new(1);
        f.add_clause(vec![]);
        assert!(Dpll::new().solve(&f).outcome.is_unsat());
    }

    #[test]
    fn budget_respected() {
        let mut f = CnfFormula::new(30);
        // Random-ish disjunctions with no units: forces decisions.
        for i in 0..28 {
            f.add_clause(vec![lit(i, true), lit(i + 1, false), lit(i + 2, true)]);
            f.add_clause(vec![lit(i, false), lit(i + 1, true), lit(i + 2, false)]);
        }
        let sol = Dpll::new().with_limits(Limits::nodes(2)).solve(&f);
        assert!(matches!(sol.outcome, Outcome::Sat(_) | Outcome::Aborted));
        assert!(sol.stats.nodes <= 3);
    }
}
