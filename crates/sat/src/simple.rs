//! Simple (chronological, fixed-order) backtracking, plus the shared
//! residual-formula bookkeeping used by the caching variant.

use std::time::Instant;

use atpg_easy_cnf::{CnfFormula, Lit, Var};

use crate::{
    probe_outcome, Deadline, Limits, NoProbe, NoProof, Outcome, Probe, ProofSink, Solution, Solver,
    SolverStats,
};

/// Emits the resolution lowering of a refuted decision prefix: the
/// clause `¬prefix` (plus `extra`, if any). A leaf conflict clause is
/// RUP because the falsified original clause empties under the asserted
/// prefix; an interior `¬prefix` is RUP because the two child clauses
/// become contradictory units under the prefix.
pub(crate) fn emit_refutation<S: ProofSink + ?Sized>(
    sink: &mut S,
    prefix: &[Lit],
    extra: Option<Lit>,
) {
    let mut clause: Vec<Lit> = prefix.iter().map(|&l| !l).collect();
    if let Some(l) = extra {
        clause.push(!l);
    }
    sink.add_clause(&clause);
}

/// Incremental view of a formula under a partial assignment.
///
/// Tracks, per clause, how many literals are currently true and how many
/// are unassigned, so conflicts ("null clauses" in the paper) and full
/// satisfaction are detected in O(occurrences) per assignment. Also
/// maintains commutative per-clause content hashes so the caching solver
/// can key its UNSAT table by the residual clause set.
pub(crate) struct Residual {
    clauses: Vec<Vec<Lit>>,
    /// Per variable: (clause index, literal as it appears).
    occ: Vec<Vec<(usize, Lit)>>,
    true_count: Vec<u32>,
    unassigned_count: Vec<u32>,
    /// Clauses with no true literal yet.
    open_clauses: usize,
    /// Clauses with no true literal and no unassigned literal.
    empty_clauses: usize,
    pub(crate) assign: Vec<Option<bool>>,
    /// Commutative content accumulators for residual-clause hashing.
    hash_sum: Vec<u64>,
    hash_xor: Vec<u64>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn lit_hash(l: Lit) -> u64 {
    splitmix64(l.code() as u64 ^ 0xD1B5_4A32_D192_ED03)
}

impl Residual {
    pub(crate) fn new(f: &CnfFormula) -> Self {
        let n = f.num_vars();
        let m = f.num_clauses();
        let mut r = Residual {
            clauses: f.clauses().to_vec(),
            occ: vec![Vec::new(); n],
            true_count: vec![0; m],
            unassigned_count: vec![0; m],
            open_clauses: m,
            empty_clauses: 0,
            assign: vec![None; n],
            hash_sum: vec![0; m],
            hash_xor: vec![0; m],
        };
        for (ci, clause) in r.clauses.iter().enumerate() {
            r.unassigned_count[ci] = clause.len() as u32;
            if clause.is_empty() {
                r.empty_clauses += 1;
            }
            for &l in clause {
                r.occ[l.var().index()].push((ci, l));
                r.hash_sum[ci] = r.hash_sum[ci].wrapping_add(lit_hash(l));
                r.hash_xor[ci] ^= lit_hash(l);
            }
        }
        r
    }

    /// Whether the current partial assignment falsifies some clause
    /// entirely (a "null clause").
    pub(crate) fn has_conflict(&self) -> bool {
        self.empty_clauses > 0
    }

    /// Whether every clause already contains a true literal.
    pub(crate) fn all_satisfied(&self) -> bool {
        self.open_clauses == 0
    }

    pub(crate) fn assign(&mut self, var: Var, value: bool) {
        debug_assert!(self.assign[var.index()].is_none());
        self.assign[var.index()] = Some(value);
        // Iterate by index to sidestep the borrow of `self.occ`.
        for k in 0..self.occ[var.index()].len() {
            let (ci, l) = self.occ[var.index()][k];
            self.unassigned_count[ci] -= 1;
            let h = lit_hash(l);
            self.hash_sum[ci] = self.hash_sum[ci].wrapping_sub(h);
            self.hash_xor[ci] ^= h;
            if l.asserted_value() == value {
                if self.true_count[ci] == 0 {
                    self.open_clauses -= 1;
                }
                self.true_count[ci] += 1;
            } else if self.true_count[ci] == 0 && self.unassigned_count[ci] == 0 {
                self.empty_clauses += 1;
            }
        }
    }

    pub(crate) fn unassign(&mut self, var: Var) {
        let value = self.assign[var.index()].expect("variable was assigned");
        for k in 0..self.occ[var.index()].len() {
            let (ci, l) = self.occ[var.index()][k];
            if l.asserted_value() == value {
                self.true_count[ci] -= 1;
                if self.true_count[ci] == 0 {
                    self.open_clauses += 1;
                }
            } else if self.true_count[ci] == 0 && self.unassigned_count[ci] == 0 {
                self.empty_clauses -= 1;
            }
            self.unassigned_count[ci] += 1;
            let h = lit_hash(l);
            self.hash_sum[ci] = self.hash_sum[ci].wrapping_add(h);
            self.hash_xor[ci] ^= h;
        }
        self.assign[var.index()] = None;
    }

    /// A 128-bit fingerprint of the residual formula *as a set of clauses*:
    /// satisfied clauses are dropped, false literals are dropped, and
    /// clauses that reduce to identical literal sets are merged — exactly
    /// the identity the paper's footnote 2 specifies.
    pub(crate) fn state_fingerprint(&self) -> u128 {
        let mut active: Vec<u64> = (0..self.clauses.len())
            .filter(|&ci| self.true_count[ci] == 0)
            .map(|ci| {
                let content = self.hash_sum[ci]
                    .rotate_left(17)
                    .wrapping_add(splitmix64(self.hash_xor[ci]))
                    .wrapping_add(self.unassigned_count[ci] as u64);
                splitmix64(content)
            })
            .collect();
        active.sort_unstable();
        active.dedup();
        let mut a: u64 = 0x243F_6A88_85A3_08D3;
        let mut b: u64 = 0x1319_8A2E_0370_7344;
        for (i, h) in active.iter().enumerate() {
            a = splitmix64(a ^ h.wrapping_mul(i as u64 | 1));
            b = b.wrapping_add(splitmix64(h ^ 0xA409_3822_299F_31D0));
        }
        ((a as u128) << 64) | b as u128
    }

    /// The completed model: unassigned variables default to `false`.
    pub(crate) fn model(&self) -> Vec<bool> {
        self.assign.iter().map(|v| v.unwrap_or(false)).collect()
    }

    /// The canonical residual clause set behind [`Residual::state_fingerprint`]:
    /// every active clause (no true literal) as its sorted remaining-literal
    /// codes, the clause list itself sorted and deduplicated, flattened with
    /// `u32::MAX` separators. Two residuals are the same sub-formula (under
    /// the paper's footnote-2 identity) iff their canonical keys are equal —
    /// unlike the fingerprint, which can collide.
    pub(crate) fn canonical_key(&self) -> Box<[u32]> {
        let mut active: Vec<Vec<u32>> = (0..self.clauses.len())
            .filter(|&ci| self.true_count[ci] == 0)
            .map(|ci| {
                let mut lits: Vec<u32> = self.clauses[ci]
                    .iter()
                    .filter(|l| self.assign[l.var().index()].is_none())
                    .map(|l| l.code() as u32)
                    .collect();
                lits.sort_unstable();
                lits
            })
            .collect();
        active.sort_unstable();
        active.dedup();
        let mut flat = Vec::with_capacity(active.iter().map(|c| c.len() + 1).sum());
        for clause in active {
            flat.extend_from_slice(&clause);
            flat.push(u32::MAX);
        }
        flat.into_boxed_slice()
    }
}

/// Fixed-order chronological backtracking without caching — the
/// "simple backtracking" baseline of the paper's Section 4.
///
/// The variable order defaults to variable index order; supply another
/// permutation with [`SimpleBacktracking::with_order`] (the paper's `h`).
#[derive(Debug, Clone, Default)]
pub struct SimpleBacktracking {
    order: Option<Vec<Var>>,
    limits: Limits,
    stats: SolverStats,
}

impl SimpleBacktracking {
    /// Solver with index variable order and no limits.
    pub fn new() -> Self {
        SimpleBacktracking::default()
    }

    /// Sets the static variable order `h`.
    ///
    /// # Panics
    ///
    /// At solve time, panics if the order is not a permutation of the
    /// formula's variables.
    pub fn with_order(mut self, order: Vec<Var>) -> Self {
        self.order = Some(order);
        self
    }

    /// Sets a resource budget.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }
}

pub(crate) fn check_order(order: &[Var], num_vars: usize) {
    assert_eq!(order.len(), num_vars, "order must cover every variable");
    let mut seen = vec![false; num_vars];
    for v in order {
        assert!(!seen[v.index()], "order must not repeat variables");
        seen[v.index()] = true;
    }
}

enum Verdict {
    Sat,
    Unsat,
    Aborted,
}

#[allow(clippy::too_many_arguments)]
fn rec<P: Probe + ?Sized, S: ProofSink + ?Sized>(
    res: &mut Residual,
    order: &[Var],
    depth: usize,
    stats: &mut SolverStats,
    limits: &Limits,
    deadline: &mut Deadline,
    probe: &mut P,
    sink: &mut S,
    prefix: &mut Vec<Lit>,
) -> Verdict {
    if res.all_satisfied() || depth == order.len() {
        // All variables assigned with no null clause means every
        // clause is satisfied.
        return Verdict::Sat;
    }
    let v = order[depth];
    for value in [false, true] {
        // Deadline first, before the node is counted: an already-expired
        // deadline must abort with zero decisions on the books.
        probe.deadline_check();
        if deadline.expired() {
            return Verdict::Aborted;
        }
        stats.nodes += 1;
        stats.decisions += 1;
        probe.decision(depth);
        if let Some(max) = limits.max_nodes {
            if stats.nodes > max {
                return Verdict::Aborted;
            }
        }
        let decision = Lit::with_value(v, value);
        res.assign(v, value);
        if res.has_conflict() {
            stats.conflicts += 1;
            probe.conflict();
            if sink.enabled() {
                emit_refutation(sink, prefix, Some(decision));
            }
        } else {
            if sink.enabled() {
                prefix.push(decision);
            }
            let verdict = rec(
                res,
                order,
                depth + 1,
                stats,
                limits,
                deadline,
                probe,
                sink,
                prefix,
            );
            if sink.enabled() {
                prefix.pop();
            }
            match verdict {
                Verdict::Unsat => {}
                other => return other,
            }
        }
        res.unassign(v);
        probe.backtrack(depth);
    }
    if sink.enabled() {
        emit_refutation(sink, prefix, None);
    }
    Verdict::Unsat
}

impl SimpleBacktracking {
    fn solve_with<P: Probe + ?Sized, S: ProofSink + ?Sized>(
        &mut self,
        formula: &CnfFormula,
        probe: &mut P,
        sink: &mut S,
    ) -> Solution {
        // The stats field outlives this call on a reused solver; reset it
        // before counting so the previous solve's effort never leaks in.
        self.stats = SolverStats::default();
        let start = probe.enabled().then(Instant::now);
        probe.instance_begin(formula.num_vars(), formula.num_clauses());
        let order: Vec<Var> = match &self.order {
            Some(o) => {
                check_order(o, formula.num_vars());
                o.clone()
            }
            None => (0..formula.num_vars()).map(Var::from_index).collect(),
        };
        let mut res = Residual::new(formula);
        let outcome = if res.has_conflict() {
            // An empty clause is already an axiom; re-deriving it is RUP.
            sink.add_clause(&[]);
            Outcome::Unsat
        } else {
            let mut deadline = Deadline::start(&self.limits);
            let mut prefix: Vec<Lit> = Vec::new();
            let verdict = rec(
                &mut res,
                &order,
                0,
                &mut self.stats,
                &self.limits,
                &mut deadline,
                probe,
                sink,
                &mut prefix,
            );
            match verdict {
                Verdict::Sat => {
                    let model = res.model();
                    sink.model(&model);
                    Outcome::Sat(model)
                }
                Verdict::Unsat => Outcome::Unsat,
                Verdict::Aborted => Outcome::Aborted,
            }
        };
        probe.instance_end(
            probe_outcome(&outcome),
            start.map(|s| s.elapsed()).unwrap_or_default(),
        );
        Solution {
            outcome,
            stats: self.stats,
        }
    }
}

impl Solver for SimpleBacktracking {
    fn solve(&mut self, formula: &CnfFormula) -> Solution {
        self.solve_with(formula, &mut NoProbe, &mut NoProof)
    }

    fn solve_probed(&mut self, formula: &CnfFormula, probe: &mut dyn Probe) -> Solution {
        self.solve_with(formula, probe, &mut NoProof)
    }

    fn solve_certified(
        &mut self,
        formula: &CnfFormula,
        probe: &mut dyn Probe,
        sink: &mut dyn ProofSink,
    ) -> Solution {
        // Dispatch on the sink once: the disabled case re-monomorphizes
        // at the `NoProof` ZST so proof hooks compile away exactly as in
        // `solve_probed`, instead of paying a vtable `enabled()` check
        // per emission site.
        if sink.enabled() {
            self.solve_with(formula, probe, sink)
        } else {
            self.solve_probed(formula, probe)
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "simple-backtracking"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_cnf::Lit;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::with_value(Var::from_index(i), pos)
    }

    #[test]
    fn sat_and_model() {
        let mut f = CnfFormula::new(2);
        f.add_clause(vec![lit(0, true), lit(1, true)]);
        f.add_clause(vec![lit(0, false)]);
        let sol = SimpleBacktracking::new().solve(&f);
        let model = sol.outcome.model().expect("SAT").to_vec();
        assert!(f.eval_complete(&model));
        assert!(!model[0] && model[1]);
    }

    #[test]
    fn unsat() {
        let mut f = CnfFormula::new(1);
        f.add_clause(vec![lit(0, true)]);
        f.add_clause(vec![lit(0, false)]);
        let sol = SimpleBacktracking::new().solve(&f);
        assert!(sol.outcome.is_unsat());
        assert!(sol.stats.conflicts > 0);
    }

    #[test]
    fn empty_clause_immediate_unsat() {
        let mut f = CnfFormula::new(1);
        f.add_clause(vec![]);
        let sol = SimpleBacktracking::new().solve(&f);
        assert!(sol.outcome.is_unsat());
        assert_eq!(sol.stats.nodes, 0);
    }

    #[test]
    fn trivially_sat_empty_formula() {
        let f = CnfFormula::new(3);
        let sol = SimpleBacktracking::new().solve(&f);
        assert!(sol.outcome.is_sat());
    }

    #[test]
    fn respects_node_budget() {
        // Pigeonhole-ish hard instance: x_i pairwise constraints.
        let mut f = CnfFormula::new(12);
        for i in 0..12 {
            for j in i + 1..12 {
                f.add_clause(vec![lit(i, false), lit(j, false)]);
            }
        }
        f.add_clause((0..12).map(|i| lit(i, true)).collect());
        f.add_clause((0..12).map(|i| lit(i, true)).collect::<Vec<_>>());
        // Force UNSAT by demanding two distinct trues:
        // (handled by an auxiliary pair clause per variable)
        let sol = SimpleBacktracking::new()
            .with_limits(Limits::nodes(5))
            .solve(&f);
        // With only 5 nodes the solver must either finish instantly or abort.
        assert!(sol.stats.nodes <= 6);
    }

    #[test]
    fn custom_order_used() {
        let mut f = CnfFormula::new(3);
        f.add_clause(vec![lit(2, true)]);
        let order = vec![Var::from_index(2), Var::from_index(0), Var::from_index(1)];
        let sol = SimpleBacktracking::new().with_order(order).solve(&f);
        // First decision (x2=false) conflicts, second (x2=true) satisfies.
        assert!(sol.outcome.is_sat());
        assert_eq!(sol.stats.nodes, 2);
    }

    #[test]
    #[should_panic(expected = "order must cover")]
    fn bad_order_panics() {
        let f = CnfFormula::new(2);
        SimpleBacktracking::new()
            .with_order(vec![Var::from_index(0)])
            .solve(&f);
    }

    #[test]
    fn residual_fingerprint_merges_identical_clauses() {
        // (x0 ∨ x2) ∧ (x1 ∨ x2): after x0=false, x1=false both clauses
        // reduce to (x2) and must fingerprint as ONE clause — the same as
        // the single-clause formula (x2) with x0, x1 assigned.
        let mut f = CnfFormula::new(3);
        f.add_clause(vec![lit(0, true), lit(2, true)]);
        f.add_clause(vec![lit(1, true), lit(2, true)]);
        let mut r = Residual::new(&f);
        r.assign(Var::from_index(0), false);
        r.assign(Var::from_index(1), false);
        let fp = r.state_fingerprint();

        let mut g = CnfFormula::new(3);
        g.add_clause(vec![lit(2, true)]);
        let mut r2 = Residual::new(&g);
        r2.assign(Var::from_index(0), false);
        r2.assign(Var::from_index(1), false);
        assert_eq!(fp, r2.state_fingerprint());
    }

    #[test]
    fn canonical_key_matches_fingerprint_identity() {
        // Same reduction as the fingerprint test: two clauses collapsing
        // to (x2) must produce the same canonical key as the one-clause
        // formula, and a different formula must produce a different key.
        let mut f = CnfFormula::new(3);
        f.add_clause(vec![lit(0, true), lit(2, true)]);
        f.add_clause(vec![lit(1, true), lit(2, true)]);
        let mut r = Residual::new(&f);
        r.assign(Var::from_index(0), false);
        r.assign(Var::from_index(1), false);

        let mut g = CnfFormula::new(3);
        g.add_clause(vec![lit(2, true)]);
        let mut r2 = Residual::new(&g);
        r2.assign(Var::from_index(0), false);
        r2.assign(Var::from_index(1), false);
        assert_eq!(r.canonical_key(), r2.canonical_key());

        let mut h = CnfFormula::new(3);
        h.add_clause(vec![lit(2, false)]);
        let mut r3 = Residual::new(&h);
        r3.assign(Var::from_index(0), false);
        r3.assign(Var::from_index(1), false);
        assert_ne!(r.canonical_key(), r3.canonical_key());
    }

    #[test]
    fn residual_assign_unassign_roundtrip() {
        let mut f = CnfFormula::new(3);
        f.add_clause(vec![lit(0, true), lit(1, false), lit(2, true)]);
        f.add_clause(vec![lit(1, true)]);
        let mut r = Residual::new(&f);
        let before = r.state_fingerprint();
        r.assign(Var::from_index(0), true);
        r.assign(Var::from_index(2), false);
        r.unassign(Var::from_index(2));
        r.unassign(Var::from_index(0));
        assert_eq!(r.state_fingerprint(), before);
        assert!(!r.has_conflict());
        assert!(!r.all_satisfied());
    }
}
