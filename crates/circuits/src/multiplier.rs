//! Array multipliers — the C6288 structural family.
//!
//! C6288 is a 16×16 array multiplier built from half/full-adder cells; it
//! is the ISCAS85 circuit the paper had to *omit* from its cut-width study
//! ("due to limitations in our min-cut linear arrangement procedure"),
//! because a 2-D array has polynomial (≈√n), not logarithmic, cut-width.
//! We generate the same structure at parameterizable width so the
//! reproduction can show exactly that contrast.

use atpg_easy_netlist::{GateKind, NetId, Netlist};

fn half_adder(nl: &mut Netlist, a: NetId, b: NetId, tag: &str) -> (NetId, NetId) {
    let s = nl
        .add_gate_named(GateKind::Xor, vec![a, b], format!("hs{tag}"))
        .expect("unique");
    let c = nl
        .add_gate_named(GateKind::And, vec![a, b], format!("hc{tag}"))
        .expect("unique");
    (s, c)
}

fn full_adder(nl: &mut Netlist, a: NetId, b: NetId, cin: NetId, tag: &str) -> (NetId, NetId) {
    let axb = nl
        .add_gate_named(GateKind::Xor, vec![a, b], format!("fx{tag}"))
        .expect("unique");
    let s = nl
        .add_gate_named(GateKind::Xor, vec![axb, cin], format!("fs{tag}"))
        .expect("unique");
    let t1 = nl
        .add_gate_named(GateKind::And, vec![a, b], format!("fa{tag}"))
        .expect("unique");
    let t2 = nl
        .add_gate_named(GateKind::And, vec![axb, cin], format!("fb{tag}"))
        .expect("unique");
    let c = nl
        .add_gate_named(GateKind::Or, vec![t1, t2], format!("fc{tag}"))
        .expect("unique");
    (s, c)
}

/// An `n×n` carry-save array multiplier: inputs `a0..`, `b0..`; outputs
/// `p0..p_{2n-1}`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn array_multiplier(n: usize) -> Netlist {
    assert!(n > 0, "multiplier width must be positive");
    let mut nl = Netlist::new(format!("mul{n}x{n}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();

    // Partial products.
    let mut pp = vec![vec![NetId::from_index(0); n]; n];
    for i in 0..n {
        for j in 0..n {
            pp[i][j] = nl
                .add_gate_named(GateKind::And, vec![a[i], b[j]], format!("pp{i}_{j}"))
                .expect("unique");
        }
    }
    if n == 1 {
        nl.add_output(pp[0][0]);
        return nl;
    }

    // Row-by-row carry-save reduction: row j adds pp[·][j] into the
    // running sum.
    let mut sum: Vec<NetId> = (0..n).map(|i| pp[i][0]).collect(); // weights 0..n-1 (+row offset)
    nl.add_output(sum[0]); // p0
    let mut carries: Vec<NetId> = Vec::new();
    // `j` simultaneously indexes the partial-product column and offsets
    // the shifted running sum, so an iterator form would obscure the
    // weight arithmetic.
    #[allow(clippy::needless_range_loop)]
    for j in 1..n {
        let mut new_sum = Vec::with_capacity(n);
        let mut new_carries = Vec::with_capacity(n);
        for i in 0..n {
            // Bit of weight i+j: sum[i+1] (shifted) + pp[i][j] + carry[i].
            let s_in = if i + 1 < n { Some(sum[i + 1]) } else { None };
            let c_in = if j > 1 { Some(carries[i]) } else { None };
            let tag = format!("_{i}_{j}");
            let (s, c) = match (s_in, c_in) {
                (Some(s0), Some(c0)) => full_adder(&mut nl, pp[i][j], s0, c0, &tag),
                (Some(s0), None) => half_adder(&mut nl, pp[i][j], s0, &tag),
                (None, Some(c0)) => half_adder(&mut nl, pp[i][j], c0, &tag),
                (None, None) => {
                    let buf = nl
                        .add_gate_named(GateKind::Buf, vec![pp[i][j]], format!("pb{tag}"))
                        .expect("unique");
                    let zero = nl
                        .add_gate_named(GateKind::Const0, vec![], format!("z{tag}"))
                        .expect("unique");
                    (buf, zero)
                }
            };
            new_sum.push(s);
            new_carries.push(c);
        }
        nl.add_output(new_sum[0]); // p_j
        sum = new_sum;
        carries = new_carries;
    }

    // Final ripple adder over the remaining sum (weights n..) and carries.
    let mut carry: Option<NetId> = None;
    for i in 0..n {
        let s_bit = if i + 1 < n { Some(sum[i + 1]) } else { None };
        let c_bit = Some(carries[i]);
        let tag = format!("_fin{i}");
        let (s, c) = match (s_bit, c_bit, carry) {
            (Some(x), Some(y), Some(z)) => full_adder(&mut nl, x, y, z, &tag),
            (Some(x), Some(y), None) => half_adder(&mut nl, x, y, &tag),
            (None, Some(y), Some(z)) => half_adder(&mut nl, y, z, &tag),
            (None, Some(y), None) => {
                let buf = nl
                    .add_gate_named(GateKind::Buf, vec![y], format!("bb{tag}"))
                    .expect("unique");
                (buf, y)
            }
            _ => unreachable!("carries always exist"),
        };
        nl.add_output(s); // p_{n+i}
        carry = match (s_bit, c_bit) {
            (None, Some(_)) if i == n - 1 => None,
            _ => Some(c),
        };
        if i == n - 1 {
            break;
        }
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_netlist::sim;

    fn check(n: usize) {
        let nl = array_multiplier(n);
        assert!(nl.validate().is_ok(), "mul{n} invalid");
        assert_eq!(nl.num_outputs(), if n == 1 { 1 } else { 2 * n });
        let max = 1u64 << n;
        let pairs: Vec<(u64, u64)> = if n <= 4 {
            (0..max)
                .flat_map(|a| (0..max).map(move |b| (a, b)))
                .collect()
        } else {
            (0..100)
                .map(|s| ((s * 91) % max, (s * 57 + 3) % max))
                .collect()
        };
        for (a, b) in pairs {
            let mut inputs = Vec::new();
            inputs.extend((0..n).map(|i| a >> i & 1 != 0));
            inputs.extend((0..n).map(|i| b >> i & 1 != 0));
            let outs = sim::eval_outputs(&nl, &inputs);
            let got = outs
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i));
            assert_eq!(got, a * b, "{a}*{b} (n={n})");
        }
    }

    #[test]
    fn multiplies_small_widths() {
        for n in [1, 2, 3, 4] {
            check(n);
        }
    }

    #[test]
    fn multiplies_width_six_sampled() {
        check(6);
    }

    #[test]
    fn quadratic_size() {
        let g4 = array_multiplier(4).num_gates();
        let g8 = array_multiplier(8).num_gates();
        assert!(
            g8 > 3 * g4,
            "array multiplier grows quadratically: {g4} -> {g8}"
        );
    }
}
