//! A 74181-flavoured ALU slice array — the C880 structural family.

use atpg_easy_netlist::{GateKind, NetId, Netlist};

/// An `n`-bit ALU with two function-select bits and carry-in:
///
/// | s1 s0 | result            |
/// |-------|-------------------|
/// | 0  0  | `a AND b`         |
/// | 0  1  | `a OR b`          |
/// | 1  0  | `a XOR b`         |
/// | 1  1  | `a + b + cin`     |
///
/// Outputs `f0..f_{n-1}` and `cout` (carry meaningful in add mode only).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn alu(n: usize) -> Netlist {
    assert!(n > 0, "ALU width must be positive");
    let mut nl = Netlist::new(format!("alu{n}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let cin = nl.add_input("cin");
    let s0 = nl.add_input("s0");
    let s1 = nl.add_input("s1");
    let ns0 = nl
        .add_gate_named(GateKind::Not, vec![s0], "ns0")
        .expect("unique");
    let ns1 = nl
        .add_gate_named(GateKind::Not, vec![s1], "ns1")
        .expect("unique");

    let mut carry = cin;
    for i in 0..n {
        let and_i = nl
            .add_gate_named(GateKind::And, vec![a[i], b[i]], format!("and{i}"))
            .expect("unique");
        let or_i = nl
            .add_gate_named(GateKind::Or, vec![a[i], b[i]], format!("or{i}"))
            .expect("unique");
        let xor_i = nl
            .add_gate_named(GateKind::Xor, vec![a[i], b[i]], format!("xor{i}"))
            .expect("unique");
        // Full-adder sum and carry for add mode.
        let sum_i = nl
            .add_gate_named(GateKind::Xor, vec![xor_i, carry], format!("sum{i}"))
            .expect("unique");
        let cprop = nl
            .add_gate_named(GateKind::And, vec![xor_i, carry], format!("cp{i}"))
            .expect("unique");
        let cnext = nl
            .add_gate_named(GateKind::Or, vec![and_i, cprop], format!("cn{i}"))
            .expect("unique");
        // 4-way select.
        let t00 = nl
            .add_gate_named(GateKind::And, vec![and_i, ns1, ns0], format!("t00_{i}"))
            .expect("unique");
        let t01 = nl
            .add_gate_named(GateKind::And, vec![or_i, ns1, s0], format!("t01_{i}"))
            .expect("unique");
        let t10 = nl
            .add_gate_named(GateKind::And, vec![xor_i, s1, ns0], format!("t10_{i}"))
            .expect("unique");
        let t11 = nl
            .add_gate_named(GateKind::And, vec![sum_i, s1, s0], format!("t11_{i}"))
            .expect("unique");
        let f = nl
            .add_gate_named(GateKind::Or, vec![t00, t01, t10, t11], format!("f{i}"))
            .expect("unique");
        nl.add_output(f);
        carry = cnext;
    }
    let cout = nl
        .add_gate_named(GateKind::Buf, vec![carry], "cout")
        .expect("unique");
    nl.add_output(cout);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_netlist::sim;

    fn run(nl: &Netlist, n: usize, a: u64, b: u64, cin: bool, s: u8) -> (u64, bool) {
        let mut ins = Vec::new();
        ins.extend((0..n).map(|i| a >> i & 1 != 0));
        ins.extend((0..n).map(|i| b >> i & 1 != 0));
        ins.push(cin);
        ins.push(s & 1 != 0);
        ins.push(s & 2 != 0);
        let outs = sim::eval_outputs(nl, &ins);
        let f = outs[..n]
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i));
        (f, outs[n])
    }

    #[test]
    fn all_modes_exhaustive_width_3() {
        let n = 3;
        let nl = alu(n);
        assert!(nl.validate().is_ok());
        let mask = (1u64 << n) - 1;
        for a in 0..8u64 {
            for b in 0..8u64 {
                for cin in [false, true] {
                    assert_eq!(run(&nl, n, a, b, cin, 0).0, a & b, "AND {a} {b}");
                    assert_eq!(run(&nl, n, a, b, cin, 1).0, a | b, "OR {a} {b}");
                    assert_eq!(run(&nl, n, a, b, cin, 2).0, a ^ b, "XOR {a} {b}");
                    let (f, cout) = run(&nl, n, a, b, cin, 3);
                    let sum = a + b + u64::from(cin);
                    assert_eq!(f, sum & mask, "ADD {a} {b} {cin}");
                    assert_eq!(cout, sum > mask, "COUT {a} {b} {cin}");
                }
            }
        }
    }

    #[test]
    fn wider_alu_valid() {
        let nl = alu(8);
        assert!(nl.validate().is_ok());
        let (f, _) = run(&nl, 8, 200, 55, true, 3);
        assert_eq!(f, 0); // 200 + 55 + 1 = 256 ≡ 0 (mod 256)
    }
}
