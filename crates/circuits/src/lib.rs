//! Benchmark-circuit generators for the *atpg-easy* reproduction.
//!
//! The paper evaluates on the MCNC91 and ISCAS85 suites plus circ/gen-style
//! parameterized random circuits (Sections 1, 5.2). This crate generates
//! the same *structural families* from scratch at controlled sizes:
//!
//! - [`adders`]: ripple-carry (Fujiwara's k-bounded example) and
//!   carry-lookahead adders;
//! - [`multiplier`]: array multipliers (the C6288 family);
//! - [`alu`]: a 74181-flavoured ALU slice array (the C880 family);
//! - [`decoder`], [`mux`], [`parity`], [`comparator`]: the small
//!   combinational families populating MCNC91;
//! - [`cellular`]: one- and two-dimensional cellular arrays (the other
//!   k-bounded examples of Fujiwara \[10\]);
//! - [`random`]: a parameterized random-DAG generator standing in for
//!   Hutton et al.'s circ/gen;
//! - [`kbounded`]: random k-bounded circuits with their block-tree
//!   certificate (Theorem 5.1 experiments);
//! - [`trees`]: random k-ary tree circuits (Lemma 5.2 experiments);
//! - [`suite`]: named circuit collections (`iscas_like`, `mcnc_like`)
//!   including the genuine ISCAS85 `c17`.
//!
//! All generators are deterministic in their parameters (random ones take
//! an explicit seed).

pub mod adders;
pub mod alu;
pub mod cellular;
pub mod comparator;
pub mod decoder;
pub mod kbounded;
pub mod multiplier;
pub mod mux;
pub mod parity;
pub mod random;
pub mod suite;
pub mod trees;
