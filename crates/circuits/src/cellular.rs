//! One- and two-dimensional cellular arrays — the remaining k-bounded
//! families Fujiwara \[10\] names (paper Section 3.2).

use atpg_easy_netlist::{GateKind, NetId, Netlist};

/// A 1-D cellular array of `n` cells. Each cell computes
/// `y_i = (x_i AND carry) OR (NOT x_i AND NOT carry)` (an XNOR-accumulator)
/// and passes `y_i` to the next cell; every `y_i` is observable.
///
/// Each cell is a 2-input block and the blocks form a chain, so the array
/// is 2-bounded.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn cellular_1d(n: usize) -> Netlist {
    assert!(n > 0, "array length must be positive");
    let mut nl = Netlist::new(format!("cell1d_{n}"));
    let xs: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("x{i}"))).collect();
    let mut state = nl.add_input("seed");
    for (i, &x) in xs.iter().enumerate() {
        let y = nl
            .add_gate_named(GateKind::Xnor, vec![x, state], format!("y{i}"))
            .expect("unique");
        nl.add_output(y);
        state = y;
    }
    nl
}

/// A 2-D cellular array (`rows × cols`). Cell `(r, c)` computes
/// `AND` of its west and north signals `OR` the local input — a simple
/// systolic pattern with both horizontal and vertical propagation. All
/// bottom-row and right-column signals are observable.
///
/// Unlike the 1-D array, a 2-D array of side `s` has cut-width Θ(s) = Θ(√n),
/// which is why Fujiwara's k-bounded arrays stop being log-bounded-width in
/// two dimensions — a useful contrast case for the experiments.
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn cellular_2d(rows: usize, cols: usize) -> Netlist {
    assert!(rows > 0 && cols > 0, "array dimensions must be positive");
    let mut nl = Netlist::new(format!("cell2d_{rows}x{cols}"));
    let west: Vec<NetId> = (0..rows).map(|r| nl.add_input(format!("w{r}"))).collect();
    let north: Vec<NetId> = (0..cols).map(|c| nl.add_input(format!("n{c}"))).collect();
    let local: Vec<Vec<NetId>> = (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| nl.add_input(format!("x{r}_{c}")))
                .collect()
        })
        .collect();

    let mut h = west; // per-row horizontal signal
    let mut v = north; // per-col vertical signal
    for r in 0..rows {
        for c in 0..cols {
            let t = nl
                .add_gate_named(GateKind::And, vec![h[r], v[c]], format!("t{r}_{c}"))
                .expect("unique");
            let o = nl
                .add_gate_named(GateKind::Or, vec![t, local[r][c]], format!("o{r}_{c}"))
                .expect("unique");
            h[r] = o;
            v[c] = o;
        }
    }
    for &row_out in h.iter().take(rows) {
        nl.add_output(row_out);
    }
    for &col_out in v.iter().take(cols) {
        nl.add_output(col_out);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_netlist::sim;

    #[test]
    fn cellular_1d_is_running_xnor() {
        let n = 5;
        let nl = cellular_1d(n);
        assert!(nl.validate().is_ok());
        for m in 0u32..(1 << (n + 1)) {
            let ins: Vec<bool> = (0..=n).map(|i| m >> i & 1 != 0).collect();
            let outs = sim::eval_outputs(&nl, &ins);
            let mut state = ins[n]; // seed is the last input
            for i in 0..n {
                state = !(ins[i] ^ state);
                assert_eq!(outs[i], state, "cell {i}, m={m}");
            }
        }
    }

    #[test]
    fn cellular_2d_valid_and_sized() {
        let nl = cellular_2d(4, 6);
        assert!(nl.validate().is_ok());
        assert_eq!(nl.num_gates(), 2 * 4 * 6);
        // The bottom-right cell drives both the last-row and last-column
        // observation point, and duplicate outputs are merged.
        assert_eq!(nl.num_outputs(), 4 + 6 - 1);
    }

    #[test]
    fn cellular_2d_propagates() {
        // 1x1: out_h = out_v = (w AND n) OR x.
        let nl = cellular_2d(1, 1);
        // inputs: w0, n0, x0_0; the single cell feeds one merged output.
        assert_eq!(sim::eval_outputs(&nl, &[true, true, false]), vec![true]);
        assert_eq!(sim::eval_outputs(&nl, &[true, false, false]), vec![false]);
        assert_eq!(sim::eval_outputs(&nl, &[false, false, true]), vec![true]);
    }
}
