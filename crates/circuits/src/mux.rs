//! Multiplexer trees.

use atpg_easy_netlist::{GateKind, NetId, Netlist};

/// A `2ˢ`-to-1 multiplexer built as a binary tree of 2-input muxes:
/// data inputs `d0..`, select inputs `s0..` (s0 = least significant),
/// output `y`.
///
/// # Panics
///
/// Panics if `sel_bits == 0` or `sel_bits > 16`.
pub fn mux_tree(sel_bits: usize) -> Netlist {
    assert!((1..=16).contains(&sel_bits), "select width out of range");
    let mut nl = Netlist::new(format!("mux{}", 1 << sel_bits));
    let data: Vec<NetId> = (0..1usize << sel_bits)
        .map(|i| nl.add_input(format!("d{i}")))
        .collect();
    let sel: Vec<NetId> = (0..sel_bits)
        .map(|i| nl.add_input(format!("s{i}")))
        .collect();

    let mut layer = data;
    let mut fresh = 0usize;
    for (level, &s) in sel.iter().enumerate() {
        let ns = nl
            .add_gate_named(GateKind::Not, vec![s], format!("ns{level}"))
            .expect("unique");
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            let t0 = nl
                .add_gate_named(GateKind::And, vec![pair[0], ns], format!("m0_{fresh}"))
                .expect("unique");
            let t1 = nl
                .add_gate_named(GateKind::And, vec![pair[1], s], format!("m1_{fresh}"))
                .expect("unique");
            let o = nl
                .add_gate_named(GateKind::Or, vec![t0, t1], format!("mo_{fresh}"))
                .expect("unique");
            fresh += 1;
            next.push(o);
        }
        layer = next;
    }
    debug_assert_eq!(layer.len(), 1);
    nl.add_output(layer[0]);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_netlist::sim;

    #[test]
    fn selects_the_right_input() {
        let s = 3;
        let nl = mux_tree(s);
        assert!(nl.validate().is_ok());
        let n_data = 1 << s;
        for sel in 0..n_data as u32 {
            for active in 0..n_data {
                let mut ins = vec![false; n_data + s];
                ins[active] = true;
                for b in 0..s {
                    ins[n_data + b] = sel >> b & 1 != 0;
                }
                let outs = sim::eval_outputs(&nl, &ins);
                assert_eq!(outs[0], active as u32 == sel, "sel={sel} active={active}");
            }
        }
    }

    #[test]
    fn single_output() {
        assert_eq!(mux_tree(4).num_outputs(), 1);
        assert_eq!(mux_tree(4).num_inputs(), 16 + 4);
    }
}
