//! Named circuit suites standing in for the paper's benchmark sets.
//!
//! The genuine ISCAS85 `c17` is embedded verbatim. The remaining suite
//! members are structural stand-ins generated at reduced, laptop-friendly
//! sizes: each mirrors the documented function of its namesake (C499/C1355
//! are ECC/parity circuits, C880 is an ALU, C6288 is an array multiplier,
//! C7552 is an adder/comparator, …). DESIGN.md records this substitution;
//! the real suites can be loaded through
//! [`parser::bench`](atpg_easy_netlist::parser::bench) /
//! [`parser::blif`](atpg_easy_netlist::parser::blif) when available.

use atpg_easy_netlist::{parser::bench, GateKind, NetId, Netlist};

use crate::random::{self, RandomCircuitConfig};
use crate::{adders, alu, cellular, comparator, decoder, multiplier, mux, parity};

/// A named benchmark circuit.
#[derive(Debug, Clone)]
pub struct NamedCircuit {
    /// Suite-level name (e.g. `c880w` for the C880-like ALU).
    pub name: String,
    /// The circuit.
    pub netlist: Netlist,
}

fn named(name: &str, netlist: Netlist) -> NamedCircuit {
    NamedCircuit {
        name: name.to_string(),
        netlist,
    }
}

/// The genuine ISCAS85 `c17` netlist.
pub fn c17() -> Netlist {
    bench::parse(
        "# c17 (ISCAS85)\n\
         INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\n\
         OUTPUT(22)\nOUTPUT(23)\n\
         10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n\
         19 = NAND(11, 7)\n22 = NAND(10, 16)\n23 = NAND(16, 19)\n",
    )
    .expect("embedded c17 parses")
}

/// An `n`-line priority encoder (C432 is a 27-channel interrupt
/// controller: priority logic plus decoding): outputs the one-hot grant of
/// the highest-priority active request plus a `valid` flag.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn priority_encoder(n: usize) -> Netlist {
    assert!(n > 0, "need at least one request line");
    let mut nl = Netlist::new(format!("prio{n}"));
    let req: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("r{i}"))).collect();
    // grant_i = r_i AND NOT r_{i+1} AND ... AND NOT r_{n-1}  (line n-1 wins)
    let nreq: Vec<NetId> = (0..n)
        .map(|i| {
            nl.add_gate_named(GateKind::Not, vec![req[i]], format!("nr{i}"))
                .expect("unique")
        })
        .collect();
    for (i, &r) in req.iter().enumerate() {
        let mut ins = vec![r];
        ins.extend((i + 1..n).map(|j| nreq[j]));
        let g = if ins.len() == 1 {
            nl.add_gate_named(GateKind::Buf, ins, format!("grant{i}"))
                .expect("unique")
        } else {
            nl.add_gate_named(GateKind::And, ins, format!("grant{i}"))
                .expect("unique")
        };
        nl.add_output(g);
    }
    let valid = nl
        .add_gate_named(GateKind::Or, req, "valid")
        .expect("unique");
    nl.add_output(valid);
    nl
}

/// ISCAS85-like suite: nine circuits plus `c17`, mirroring the families of
/// the real suite (the paper analyzed 9 ISCAS85 circuits, omitting C3540
/// and C6288; we generate the multiplier anyway for the contrast
/// experiments, tagged `c6288w`).
pub fn iscas_like() -> Vec<NamedCircuit> {
    vec![
        named("c17", c17()),
        named("c432w", priority_encoder(27)),
        named("c499w", parity::parity_checker(8, 5)),
        named("c880w", alu::alu(8)),
        named("c1355w", parity::parity_tree(41)),
        named("c1908w", parity::parity_checker(4, 8)),
        named("c2670w", comparator::comparator(32)),
        named("c5315w", alu::alu(24)),
        named("c7552w", adders::ripple_carry(48)),
    ]
}

/// The array multiplier the paper *omitted* from its Figure-8 study
/// ("due to limitations in our min-cut linear arrangement procedure") —
/// kept separate so the reproduction can show the √n-width contrast.
pub fn c6288_like() -> NamedCircuit {
    named("c6288w", multiplier::array_multiplier(6))
}

/// MCNC91-logic-like suite: a batch of small/medium combinational
/// circuits covering the structural variety of the MCNC91 logic set.
pub fn mcnc_like() -> Vec<NamedCircuit> {
    let mut out = vec![
        named("dec3", decoder::decoder(3)),
        named("dec4", decoder::decoder(4)),
        named("mux8", mux::mux_tree(3)),
        named("mux16", mux::mux_tree(4)),
        named("par16", parity::parity_tree(16)),
        named("rca8", adders::ripple_carry(8)),
        named("cla6", adders::carry_lookahead(6)),
        named("cmp8", comparator::comparator(8)),
        named("cell1d32", cellular::cellular_1d(32)),
        named("cell1d96", cellular::cellular_1d(96)),
        named("cell2d4x4", cellular::cellular_2d(4, 4)),
        named("prio12", priority_encoder(12)),
        named("alu4", alu::alu(4)),
        named("alu12", alu::alu(12)),
        named("par64", parity::parity_tree(64)),
        named("rca24", adders::ripple_carry(24)),
        named("mux32", mux::mux_tree(5)),
        named("cmp20", comparator::comparator(20)),
    ];
    for (i, (gates, locality)) in [(60usize, 0.95f64), (120, 0.95), (240, 0.95), (480, 0.95)]
        .into_iter()
        .enumerate()
    {
        let nl = random::generate(&RandomCircuitConfig {
            gates,
            inputs: 12 + 4 * i,
            locality,
            window: 12,
            far_window: 48,
            seed: 1000 + i as u64,
            ..RandomCircuitConfig::default()
        })
        .expect("generator config is valid");
        out.push(named(&format!("rand{gates}"), nl));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_netlist::sim;

    #[test]
    fn c17_matches_known_structure() {
        let nl = c17();
        assert_eq!(nl.num_gates(), 6);
        assert_eq!(nl.num_inputs(), 5);
        assert_eq!(nl.num_outputs(), 2);
    }

    #[test]
    fn priority_encoder_grants_highest() {
        let nl = priority_encoder(4);
        assert!(nl.validate().is_ok());
        for m in 0u32..16 {
            let ins: Vec<bool> = (0..4).map(|i| m >> i & 1 != 0).collect();
            let outs = sim::eval_outputs(&nl, &ins);
            let highest = (0..4).rev().find(|&i| ins[i]);
            for i in 0..4 {
                assert_eq!(outs[i], highest == Some(i), "m={m} line={i}");
            }
            assert_eq!(outs[4], m != 0, "valid flag m={m}");
        }
    }

    #[test]
    fn suites_are_valid_and_named_uniquely() {
        let mut names = std::collections::HashSet::new();
        for c in iscas_like()
            .into_iter()
            .chain(mcnc_like())
            .chain([c6288_like()])
        {
            assert!(c.netlist.validate().is_ok(), "{} does not validate", c.name);
            assert!(c.netlist.num_outputs() > 0, "{} has no outputs", c.name);
            assert!(names.insert(c.name.clone()), "duplicate name {}", c.name);
        }
    }

    #[test]
    fn suites_have_size_spread() {
        let sizes: Vec<usize> = iscas_like().iter().map(|c| c.netlist.num_gates()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(
            *max > *min * 10,
            "sizes must span an order of magnitude: {sizes:?}"
        );
    }
}
