//! Parity trees — the structural family of C499/C1355/C1908 (ECC
//! circuits are dominated by XOR trees).

use atpg_easy_netlist::{GateKind, NetId, Netlist};

/// An `n`-input parity tree of 2-input XORs (balanced), output `parity`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn parity_tree(n: usize) -> Netlist {
    assert!(n > 0, "parity needs at least one input");
    let mut nl = Netlist::new(format!("parity{n}"));
    let mut layer: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("x{i}"))).collect();
    let mut fresh = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0]);
            } else {
                let x = nl
                    .add_gate_named(GateKind::Xor, pair.to_vec(), format!("px{fresh}"))
                    .expect("unique");
                fresh += 1;
                next.push(x);
            }
        }
        layer = next;
    }
    let out = nl
        .add_gate_named(GateKind::Buf, vec![layer[0]], "parity")
        .expect("unique");
    nl.add_output(out);
    nl
}

/// A multi-word parity checker: `words` groups of `width` bits, one parity
/// output per group plus a global parity — a C1908-flavoured structure
/// with shared fan-in.
///
/// # Panics
///
/// Panics if `words == 0` or `width == 0`.
pub fn parity_checker(words: usize, width: usize) -> Netlist {
    assert!(words > 0 && width > 0, "dimensions must be positive");
    let mut nl = Netlist::new(format!("pchk{words}x{width}"));
    let bits: Vec<Vec<NetId>> = (0..words)
        .map(|w| {
            (0..width)
                .map(|b| nl.add_input(format!("x{w}_{b}")))
                .collect()
        })
        .collect();
    let mut group_parities = Vec::with_capacity(words);
    for (w, group) in bits.iter().enumerate() {
        let mut acc = group[0];
        for (b, &bit) in group.iter().enumerate().skip(1) {
            acc = nl
                .add_gate_named(GateKind::Xor, vec![acc, bit], format!("g{w}_{b}"))
                .expect("unique");
        }
        let o = nl
            .add_gate_named(GateKind::Buf, vec![acc], format!("par{w}"))
            .expect("unique");
        nl.add_output(o);
        group_parities.push(o);
    }
    let mut acc = group_parities[0];
    for (w, &gp) in group_parities.iter().enumerate().skip(1) {
        acc = nl
            .add_gate_named(GateKind::Xor, vec![acc, gp], format!("gl{w}"))
            .expect("unique");
    }
    let global = nl
        .add_gate_named(GateKind::Buf, vec![acc], "global")
        .expect("unique");
    nl.add_output(global);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_netlist::sim;

    #[test]
    fn parity_is_xor_of_inputs() {
        for n in [1, 2, 5, 9] {
            let nl = parity_tree(n);
            assert!(nl.validate().is_ok());
            for m in 0u32..(1 << n.min(10)) {
                let ins: Vec<bool> = (0..n).map(|i| m >> i & 1 != 0).collect();
                let expect = ins.iter().filter(|&&b| b).count() % 2 == 1;
                assert_eq!(sim::eval_outputs(&nl, &ins), vec![expect], "n={n} m={m}");
            }
        }
    }

    #[test]
    fn checker_outputs() {
        let nl = parity_checker(3, 4);
        assert!(nl.validate().is_ok());
        assert_eq!(nl.num_outputs(), 4);
        // All-zero input: every parity 0.
        let outs = sim::eval_outputs(&nl, &vec![false; 12]);
        assert!(outs.iter().all(|&b| !b));
        // One bit set in word 1: par1 and global flip.
        let mut ins = vec![false; 12];
        ins[4] = true;
        let outs = sim::eval_outputs(&nl, &ins);
        assert_eq!(outs, vec![false, true, false, true]);
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        let nl = parity_tree(64);
        assert!(atpg_easy_netlist::topo::depth(&nl) <= 8);
    }
}
