//! Random k-bounded circuits with their block-forest certificate
//! (Fujiwara's class, paper Section 3.2 / Theorem 5.1).
//!
//! A circuit is k-bounded when its nodes partition into blocks of at most
//! `k` inputs whose block graph is a DAG with no reconvergent paths. We
//! generate such circuits *by construction*: each block's output is
//! consumed by at most one later block, so the block graph is a forest and
//! reconvergence is impossible. The returned [`KBoundedCircuit`] keeps the
//! block structure as a certificate, from which
//! [`KBoundedCircuit::certificate_order`] derives the Theorem-5.1 ordering
//! (smallest-subtree-first DFS over the block forest).

use atpg_easy_netlist::{GateId, GateKind, NetId, Netlist};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KBoundedConfig {
    /// Number of blocks.
    pub blocks: usize,
    /// Maximum inputs per block (the `k` of k-bounded).
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KBoundedConfig {
    fn default() -> Self {
        KBoundedConfig {
            blocks: 50,
            k: 3,
            seed: 7,
        }
    }
}

/// A generated k-bounded circuit plus its block certificate.
#[derive(Debug, Clone)]
pub struct KBoundedCircuit {
    /// The circuit.
    pub netlist: Netlist,
    /// The block-input bound `k`.
    pub k: usize,
    /// Gates of each block, in creation order.
    pub block_gates: Vec<Vec<GateId>>,
    /// Primary inputs consumed by each block (fresh per block).
    pub block_inputs: Vec<Vec<NetId>>,
    /// The single output net of each block.
    pub block_output: Vec<NetId>,
    /// For each block, the block that consumes its output (`None` for
    /// forest roots, whose outputs are primary outputs).
    pub parent: Vec<Option<usize>>,
}

impl KBoundedCircuit {
    /// An ordering of the circuit's hypergraph nodes
    /// ([`Hypergraph::from_netlist`](atpg_easy_cutwidth-free) numbering:
    /// gates, then inputs, then output terminals) that realizes the
    /// Theorem-5.1 `O(k · log n)` cut-width: smallest-subtree-first DFS
    /// preorder over the block forest, each block's primary inputs and
    /// gates placed contiguously.
    pub fn certificate_order(&self) -> Vec<usize> {
        let n_blocks = self.block_gates.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n_blocks];
        let mut roots = Vec::new();
        for (b, p) in self.parent.iter().enumerate() {
            match p {
                Some(q) => children[*q].push(b),
                None => roots.push(b),
            }
        }
        // Subtree sizes over the block forest.
        let mut size = vec![1usize; n_blocks];
        // Blocks are created in topological order (children before
        // parents), so a reverse sweep is bottom-up... children have
        // SMALLER indices than parents, so forward sweep accumulates.
        for b in 0..n_blocks {
            for &c in &children[b] {
                debug_assert!(c < b);
                size[b] += size[c];
            }
        }

        let g = self.netlist.num_gates();
        let pi_index: std::collections::HashMap<NetId, usize> = self
            .netlist
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, g + i))
            .collect();
        let po_base = g + self.netlist.num_inputs();

        let mut order = Vec::new();
        // DFS each root (roots sorted smallest-first as well); preorder:
        // parent block first, then children smallest-first.
        let mut stack: Vec<usize> = Vec::new();
        let mut sorted_roots = roots.clone();
        sorted_roots.sort_by_key(|&b| size[b]);
        for &r in sorted_roots.iter().rev() {
            stack.push(r);
        }
        while let Some(b) = stack.pop() {
            // Emit the block: its output terminal (if a root), its fresh
            // primary inputs, then its gates.
            if self.parent[b].is_none() {
                if let Some(pos) = self
                    .netlist
                    .outputs()
                    .iter()
                    .position(|&o| o == self.block_output[b])
                {
                    order.push(po_base + pos);
                }
            }
            for pi in &self.block_inputs[b] {
                order.push(pi_index[pi]);
            }
            for gid in &self.block_gates[b] {
                order.push(gid.index());
            }
            let mut kids = children[b].clone();
            kids.sort_by_key(|&c| size[c]);
            for &c in kids.iter().rev() {
                stack.push(c);
            }
        }
        order
    }
}

/// Generates a random k-bounded circuit.
///
/// Each block draws up to `k` inputs from a pool of unconsumed earlier
/// block outputs (consuming them) and fresh primary inputs, then combines
/// them with a random gate tree. Leftover block outputs become primary
/// outputs.
///
/// # Panics
///
/// Panics if `blocks == 0` or `k < 2`.
pub fn generate(config: &KBoundedConfig) -> KBoundedCircuit {
    assert!(config.blocks > 0, "need at least one block");
    assert!(config.k >= 2, "k must be at least 2");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut nl = Netlist::new(format!("kb{}_{}", config.k, config.blocks));

    // Pool of unconsumed block outputs: (block index, net).
    let mut pool: Vec<(usize, NetId)> = Vec::new();
    let mut block_gates = Vec::with_capacity(config.blocks);
    let mut block_inputs = Vec::with_capacity(config.blocks);
    let mut block_output = Vec::with_capacity(config.blocks);
    let mut parent: Vec<Option<usize>> = vec![None; config.blocks];
    let mut pi_count = 0usize;

    for b in 0..config.blocks {
        let n_in = rng.random_range(2..=config.k);
        let from_pool = rng.random_range(0..=n_in.min(pool.len()));
        let mut ins: Vec<NetId> = Vec::with_capacity(n_in);
        let mut fresh: Vec<NetId> = Vec::new();
        for _ in 0..from_pool {
            let idx = rng.random_range(0..pool.len());
            let (src, net) = pool.swap_remove(idx);
            parent[src] = Some(b);
            ins.push(net);
        }
        while ins.len() < n_in {
            let pi = nl.add_input(format!("pi{pi_count}"));
            pi_count += 1;
            fresh.push(pi);
            ins.push(pi);
        }

        // Random balanced gate tree over the block inputs.
        let mut gates = Vec::new();
        let mut layer = ins;
        let mut t = 0usize;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 1 {
                    next.push(pair[0]);
                    continue;
                }
                const KINDS: [GateKind; 5] = [
                    GateKind::And,
                    GateKind::Or,
                    GateKind::Nand,
                    GateKind::Nor,
                    GateKind::Xor,
                ];
                let kind = KINDS[rng.random_range(0..KINDS.len())];
                let out = nl
                    .add_gate_named(kind, pair.to_vec(), format!("b{b}_g{t}"))
                    .expect("unique names");
                t += 1;
                gates.push(nl.net(out).driver.expect("just driven"));
                next.push(out);
            }
            layer = next;
        }
        let out_net = layer[0];
        pool.push((b, out_net));
        block_gates.push(gates);
        block_inputs.push(fresh);
        block_output.push(out_net);
    }

    for (_, net) in &pool {
        nl.add_output(*net);
    }
    nl.validate().expect("construction is well-formed");
    KBoundedCircuit {
        netlist: nl,
        k: config.k,
        block_gates,
        block_inputs,
        block_output,
        parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_circuit_is_valid_forest() {
        let kb = generate(&KBoundedConfig::default());
        assert!(kb.netlist.validate().is_ok());
        // Every block output has at most one reader: fan-out ≤ 1 on block
        // outputs guarantees the no-reconvergence property.
        let fanouts = kb.netlist.fanouts();
        for &out in &kb.block_output {
            assert!(fanouts[out.index()].len() <= 1);
        }
    }

    #[test]
    fn block_inputs_bounded_by_k() {
        let kb = generate(&KBoundedConfig {
            blocks: 80,
            k: 4,
            seed: 3,
        });
        for b in 0..kb.block_gates.len() {
            let external =
                kb.block_inputs[b].len() + kb.parent.iter().filter(|p| **p == Some(b)).count();
            assert!(external <= 4, "block {b} has {external} inputs");
        }
    }

    #[test]
    fn certificate_order_is_permutation() {
        let kb = generate(&KBoundedConfig::default());
        let mut order = kb.certificate_order();
        let n = kb.netlist.num_gates() + kb.netlist.num_inputs() + kb.netlist.num_outputs();
        order.sort_unstable();
        assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic() {
        let a = generate(&KBoundedConfig::default());
        let b = generate(&KBoundedConfig::default());
        assert_eq!(a.netlist.to_string(), b.netlist.to_string());
    }
}
