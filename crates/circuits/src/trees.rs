//! Random k-ary tree circuits (for the Lemma 5.2 experiments).

use atpg_easy_netlist::{GateKind, NetId, Netlist};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a random tree circuit with exactly `gates` gates, each with
/// fan-in between 2 and `k` (or an inverter), a single output, and every
/// internal net read exactly once.
///
/// # Panics
///
/// Panics if `gates == 0` or `k < 2`.
pub fn random_tree(k: usize, gates: usize, seed: u64) -> Netlist {
    assert!(gates > 0, "need at least one gate");
    assert!(k >= 2, "k must be at least 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("tree{k}_{gates}"));
    // Pool of open subtree roots; each is consumed exactly once.
    let mut pool: Vec<NetId> = Vec::new();
    let mut pi = 0usize;
    const KINDS: [GateKind; 5] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
    ];
    for g in 0..gates {
        let remaining = gates - g - 1;
        // The final gate must be able to absorb the whole pool; keep the
        // pool small enough that `remaining` gates (each net-consuming up
        // to k-1 pool entries) can reduce it to one.
        let fanin = if remaining == 0 && pool.len() > 1 {
            pool.len().min(k)
        } else {
            rng.random_range(2..=k)
        };
        let mut ins = Vec::with_capacity(fanin);
        for _ in 0..fanin {
            // Prefer pool entries when the pool risks outgrowing the
            // remaining reduction capacity.
            let capacity = remaining * (k - 1) + 1;
            let must_consume = pool.len() + fanin >= capacity;
            let take_pool = !pool.is_empty() && (must_consume || rng.random_bool(0.5));
            if take_pool {
                let idx = rng.random_range(0..pool.len());
                ins.push(pool.swap_remove(idx));
            } else {
                let p = nl.add_input(format!("x{pi}"));
                pi += 1;
                ins.push(p);
            }
        }
        let kind = if ins.len() == 1 {
            GateKind::Not
        } else {
            KINDS[rng.random_range(0..KINDS.len())]
        };
        let out = nl
            .add_gate_named(kind, ins, format!("g{g}"))
            .expect("unique names");
        pool.push(out);
    }
    // Reduce any leftover pool with extra gates so a single root remains.
    let mut extra = 0usize;
    while pool.len() > 1 {
        let take = pool.len().min(k);
        let ins: Vec<NetId> = pool.drain(pool.len() - take..).collect();
        let out = nl
            .add_gate_named(GateKind::And, ins, format!("r{extra}"))
            .expect("unique names");
        extra += 1;
        pool.push(out);
    }
    nl.add_output(pool[0]);
    nl.validate().expect("tree construction is well-formed");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trees_are_trees() {
        for seed in 0..6 {
            for k in [2, 3, 4] {
                let nl = random_tree(k, 40, seed);
                let fanouts = nl.fanouts();
                for (id, _) in nl.nets() {
                    let readers = fanouts[id.index()].len() + usize::from(nl.is_output(id));
                    assert_eq!(readers, 1, "net read exactly once (k={k} seed={seed})");
                }
                assert_eq!(nl.num_outputs(), 1);
                assert!(nl.max_fanin() <= k);
            }
        }
    }

    #[test]
    fn gate_count_close_to_requested() {
        let nl = random_tree(3, 100, 1);
        assert!(nl.num_gates() >= 100);
        assert!(
            nl.num_gates() <= 110,
            "few reduction gates: {}",
            nl.num_gates()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            random_tree(3, 30, 9).to_string(),
            random_tree(3, 30, 9).to_string()
        );
    }
}
