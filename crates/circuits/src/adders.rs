//! Ripple-carry and carry-lookahead adders.
//!
//! The ripple-carry adder is Fujiwara's canonical k-bounded circuit
//! (paper Section 3.2): each full-adder cell is a block with 3 inputs and
//! the blocks form a chain. The carry-lookahead adder, by contrast, has
//! global reconvergence through the lookahead logic.

use atpg_easy_netlist::{GateKind, NetId, Netlist};

fn full_adder(nl: &mut Netlist, a: NetId, b: NetId, cin: NetId, tag: &str) -> (NetId, NetId) {
    let axb = nl
        .add_gate_named(GateKind::Xor, vec![a, b], format!("axb{tag}"))
        .expect("unique tag");
    let sum = nl
        .add_gate_named(GateKind::Xor, vec![axb, cin], format!("sum{tag}"))
        .expect("unique tag");
    let ab = nl
        .add_gate_named(GateKind::And, vec![a, b], format!("ab{tag}"))
        .expect("unique tag");
    let cx = nl
        .add_gate_named(GateKind::And, vec![axb, cin], format!("cx{tag}"))
        .expect("unique tag");
    let cout = nl
        .add_gate_named(GateKind::Or, vec![ab, cx], format!("cout{tag}"))
        .expect("unique tag");
    (sum, cout)
}

/// An `n`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`; outputs
/// `s0..` and `cout`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_carry(n: usize) -> Netlist {
    assert!(n > 0, "adder width must be positive");
    let mut nl = Netlist::new(format!("rca{n}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let mut carry = nl.add_input("cin");
    for i in 0..n {
        let (sum, cout) = full_adder(&mut nl, a[i], b[i], carry, &format!("_{i}"));
        nl.add_output(sum);
        carry = cout;
    }
    nl.add_output(carry);
    nl
}

/// An `n`-bit carry-lookahead adder (single-level lookahead): carries are
/// computed as `c_{i+1} = g_i ∨ (p_i ∧ c_i)` fully expanded, giving the
/// deep reconvergence the ripple version lacks.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn carry_lookahead(n: usize) -> Netlist {
    assert!(n > 0, "adder width must be positive");
    let mut nl = Netlist::new(format!("cla{n}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let cin = nl.add_input("cin");
    let mut g = Vec::with_capacity(n);
    let mut p = Vec::with_capacity(n);
    for i in 0..n {
        g.push(
            nl.add_gate_named(GateKind::And, vec![a[i], b[i]], format!("g{i}"))
                .expect("unique"),
        );
        p.push(
            nl.add_gate_named(GateKind::Xor, vec![a[i], b[i]], format!("p{i}"))
                .expect("unique"),
        );
    }
    // c_{i+1} = g_i + p_i g_{i-1} + p_i p_{i-1} g_{i-2} + … + p_i…p_0 cin
    let mut carries = vec![cin];
    for i in 0..n {
        let mut terms: Vec<NetId> = vec![g[i]];
        for j in (0..i).rev() {
            // p_i p_{i-1} … p_{j+1} g_j
            let mut ands = vec![g[j]];
            ands.extend((j + 1..=i).map(|t| p[t]));
            terms.push(
                nl.add_gate_named(GateKind::And, ands, format!("t{i}_{j}"))
                    .expect("unique"),
            );
        }
        let mut ands = vec![cin];
        ands.extend((0..=i).map(|t| p[t]));
        terms.push(
            nl.add_gate_named(GateKind::And, ands, format!("t{i}_cin"))
                .expect("unique"),
        );
        carries.push(
            nl.add_gate_named(GateKind::Or, terms, format!("c{}", i + 1))
                .expect("unique"),
        );
    }
    for i in 0..n {
        let s = nl
            .add_gate_named(GateKind::Xor, vec![p[i], carries[i]], format!("s{i}"))
            .expect("unique");
        nl.add_output(s);
    }
    nl.add_output(carries[n]);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_netlist::sim;

    fn check_adder(nl: &Netlist, n: usize) {
        assert!(nl.validate().is_ok());
        let max = 1u64 << n;
        let trials: Vec<(u64, u64, bool)> = if n <= 3 {
            (0..max)
                .flat_map(|a| (0..max).flat_map(move |b| [(a, b, false), (a, b, true)]))
                .collect()
        } else {
            (0..64u64)
                .map(|s| ((s * 37) % max, (s * 53 + 11) % max, s % 2 == 0))
                .collect()
        };
        for (a, b, cin) in trials {
            let mut inputs = Vec::new();
            inputs.extend((0..n).map(|i| a >> i & 1 != 0));
            inputs.extend((0..n).map(|i| b >> i & 1 != 0));
            inputs.push(cin);
            let outs = sim::eval_outputs(nl, &inputs);
            let expect = a + b + u64::from(cin);
            let got = outs
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i));
            assert_eq!(got, expect & ((max << 1) - 1), "{a}+{b}+{}", u8::from(cin));
        }
    }

    #[test]
    fn ripple_carry_adds() {
        for n in [1, 2, 3, 8] {
            check_adder(&ripple_carry(n), n);
        }
    }

    #[test]
    fn carry_lookahead_adds() {
        for n in [1, 2, 3, 6] {
            check_adder(&carry_lookahead(n), n);
        }
    }

    #[test]
    fn lookahead_has_wide_gates() {
        // The expanded lookahead terms create wide AND gates — the
        // structural difference the cut-width experiments rely on.
        let nl = carry_lookahead(8);
        assert!(nl.max_fanin() >= 8);
        assert!(ripple_carry(8).max_fanin() <= 2);
    }

    #[test]
    fn sizes_grow_linearly_for_ripple() {
        assert_eq!(ripple_carry(4).num_gates(), 4 * 5);
        assert_eq!(ripple_carry(16).num_gates(), 16 * 5);
    }
}
