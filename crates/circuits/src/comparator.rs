//! Magnitude/equality comparators.

use atpg_easy_netlist::{GateKind, NetId, Netlist};

/// An `n`-bit comparator: inputs `a0..`, `b0..`; outputs `eq` and `gt`
/// (`a > b` unsigned). Built as a ripple from the most significant bit.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn comparator(n: usize) -> Netlist {
    assert!(n > 0, "comparator width must be positive");
    let mut nl = Netlist::new(format!("cmp{n}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();

    // Bitwise eq_i = XNOR(a_i, b_i); gti = a_i AND NOT b_i.
    let mut eq_acc: Option<NetId> = None;
    let mut gt_acc: Option<NetId> = None;
    for i in (0..n).rev() {
        let eq_i = nl
            .add_gate_named(GateKind::Xnor, vec![a[i], b[i]], format!("eq{i}"))
            .expect("unique");
        let nb = nl
            .add_gate_named(GateKind::Not, vec![b[i]], format!("nb{i}"))
            .expect("unique");
        let gt_i = nl
            .add_gate_named(GateKind::And, vec![a[i], nb], format!("gtb{i}"))
            .expect("unique");
        match (eq_acc, gt_acc) {
            (None, None) => {
                eq_acc = Some(eq_i);
                gt_acc = Some(gt_i);
            }
            (Some(e), Some(g)) => {
                // gt = g OR (e AND gt_i); eq = e AND eq_i.
                let t = nl
                    .add_gate_named(GateKind::And, vec![e, gt_i], format!("t{i}"))
                    .expect("unique");
                gt_acc = Some(
                    nl.add_gate_named(GateKind::Or, vec![g, t], format!("gt_acc{i}"))
                        .expect("unique"),
                );
                eq_acc = Some(
                    nl.add_gate_named(GateKind::And, vec![e, eq_i], format!("eq_acc{i}"))
                        .expect("unique"),
                );
            }
            _ => unreachable!("accumulators move together"),
        }
    }
    let eq = nl
        .add_gate_named(GateKind::Buf, vec![eq_acc.expect("n > 0")], "eq")
        .expect("unique");
    let gt = nl
        .add_gate_named(GateKind::Buf, vec![gt_acc.expect("n > 0")], "gt")
        .expect("unique");
    nl.add_output(eq);
    nl.add_output(gt);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_netlist::sim;

    #[test]
    fn compares_exhaustively() {
        let n = 4;
        let nl = comparator(n);
        assert!(nl.validate().is_ok());
        for a in 0u64..16 {
            for b in 0u64..16 {
                let mut ins = Vec::new();
                ins.extend((0..n).map(|i| a >> i & 1 != 0));
                ins.extend((0..n).map(|i| b >> i & 1 != 0));
                let outs = sim::eval_outputs(&nl, &ins);
                assert_eq!(outs[0], a == b, "eq {a} {b}");
                assert_eq!(outs[1], a > b, "gt {a} {b}");
            }
        }
    }

    #[test]
    fn width_one() {
        let nl = comparator(1);
        assert_eq!(sim::eval_outputs(&nl, &[true, false]), vec![false, true]);
        assert_eq!(sim::eval_outputs(&nl, &[true, true]), vec![true, false]);
    }
}
