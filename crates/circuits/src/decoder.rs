//! Binary decoders — Fujiwara's second k-bounded example.

use atpg_easy_netlist::{GateKind, NetId, Netlist};

/// An `n`-to-`2ⁿ` decoder with enable: output `d_m` is 1 iff the select
/// inputs spell `m` and `en` is 1.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 16`.
pub fn decoder(n: usize) -> Netlist {
    assert!((1..=16).contains(&n), "decoder select width out of range");
    let mut nl = Netlist::new(format!("dec{n}"));
    let sel: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("s{i}"))).collect();
    let en = nl.add_input("en");
    let nsel: Vec<NetId> = (0..n)
        .map(|i| {
            nl.add_gate_named(GateKind::Not, vec![sel[i]], format!("ns{i}"))
                .expect("unique")
        })
        .collect();
    for m in 0u32..(1 << n) {
        let mut ins: Vec<NetId> = (0..n)
            .map(|i| if m >> i & 1 != 0 { sel[i] } else { nsel[i] })
            .collect();
        ins.push(en);
        let d = nl
            .add_gate_named(GateKind::And, ins, format!("d{m}"))
            .expect("unique");
        nl.add_output(d);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_netlist::sim;

    #[test]
    fn one_hot_when_enabled() {
        let nl = decoder(3);
        assert!(nl.validate().is_ok());
        for m in 0u32..8 {
            let mut ins: Vec<bool> = (0..3).map(|i| m >> i & 1 != 0).collect();
            ins.push(true);
            let outs = sim::eval_outputs(&nl, &ins);
            for (j, &o) in outs.iter().enumerate() {
                assert_eq!(o, j as u32 == m, "select {m}, line {j}");
            }
        }
    }

    #[test]
    fn all_zero_when_disabled() {
        let nl = decoder(2);
        let outs = sim::eval_outputs(&nl, &[true, false, false]);
        assert!(outs.iter().all(|&o| !o));
    }

    #[test]
    fn output_count() {
        assert_eq!(decoder(4).num_outputs(), 16);
    }
}
