//! Parameterized random circuit generation — the circ/gen stand-in
//! (Hutton et al. \[14\], used by the paper's Section 5.2.3).
//!
//! Circuits are generated gate-by-gate with a *locality* knob: each gate
//! input is drawn from recently created nets with probability `locality`
//! (geometric window) and uniformly from all existing nets otherwise.
//! High locality yields the shallow, tree-ish structure of real logic;
//! low locality yields long-range reconvergence and larger cut-width —
//! exactly the axis the paper's argument turns on.

use atpg_easy_netlist::{GateKind, NetId, Netlist, NetlistError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomCircuitConfig {
    /// Number of logic gates.
    pub gates: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Maximum gate fan-in (inputs per gate drawn from `2..=max_fanin`).
    pub max_fanin: usize,
    /// Probability that an input is drawn from the near (recent-net)
    /// window instead of the far window; in `[0, 1]`.
    pub locality: f64,
    /// Size of the near window.
    pub window: usize,
    /// Size of the far window: even "global" connections reach at most
    /// this far back, mirroring the bounded wire locality (Rent behaviour)
    /// of real netlists that circ/gen models. Set to `usize::MAX` for
    /// genuinely global (expander-like) wiring.
    pub far_window: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig {
            gates: 100,
            inputs: 16,
            max_fanin: 3,
            locality: 0.9,
            window: 24,
            far_window: 96,
            seed: 42,
        }
    }
}

/// Generates a random combinational circuit. Every net that ends up unread
/// becomes a primary output, so the result is always well-formed.
///
/// # Errors
///
/// Propagates netlist construction errors (none occur for valid configs).
///
/// # Panics
///
/// Panics if `gates == 0`, `inputs == 0` or `max_fanin < 2`.
pub fn generate(config: &RandomCircuitConfig) -> Result<Netlist, NetlistError> {
    assert!(config.gates > 0, "need at least one gate");
    assert!(config.inputs > 0, "need at least one input");
    assert!(config.max_fanin >= 2, "max_fanin must be at least 2");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut nl = Netlist::new(format!(
        "rand_g{}_i{}_l{}",
        config.gates,
        config.inputs,
        (config.locality * 100.0) as u32
    ));
    let mut nets: Vec<NetId> = (0..config.inputs)
        .map(|i| nl.add_input(format!("pi{i}")))
        .collect();

    const KINDS: [GateKind; 6] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Not,
    ];
    for g in 0..config.gates {
        let kind = KINDS[rng.random_range(0..KINDS.len())];
        let fanin = match kind {
            GateKind::Not => 1,
            GateKind::Xor => 2,
            _ => rng.random_range(2..=config.max_fanin),
        };
        let mut ins = Vec::with_capacity(fanin);
        for _ in 0..fanin {
            let pick = if rng.random_bool(config.locality.clamp(0.0, 1.0)) {
                let w = config.window.min(nets.len());
                nets[nets.len() - 1 - rng.random_range(0..w)]
            } else {
                let w = config.far_window.min(nets.len());
                nets[nets.len() - 1 - rng.random_range(0..w)]
            };
            if !ins.contains(&pick) {
                ins.push(pick);
            }
        }
        if ins.is_empty() {
            ins.push(nets[nets.len() - 1]);
        }
        if kind == GateKind::Xor && ins.len() == 1 {
            // XOR degenerated to one distinct input: treat as a buffer.
            let out = nl.add_gate_named(GateKind::Buf, ins, format!("g{g}"))?;
            nets.push(out);
            continue;
        }
        let out = nl.add_gate_named(kind, ins, format!("g{g}"))?;
        nets.push(out);
    }

    // Every unread net becomes an output (circ/gen also pads outputs).
    let fanouts = nl.fanouts();
    let dangling: Vec<NetId> = nl
        .net_ids()
        .filter(|n| fanouts[n.index()].is_empty())
        .collect();
    for n in dangling {
        nl.add_output(n);
    }
    nl.validate()?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_circuits() {
        for seed in 0..5 {
            let cfg = RandomCircuitConfig {
                seed,
                ..RandomCircuitConfig::default()
            };
            let nl = generate(&cfg).unwrap();
            assert_eq!(nl.num_gates(), 100);
            assert_eq!(nl.num_inputs(), 16);
            assert!(nl.num_outputs() > 0);
            assert!(nl.max_fanin() <= 3);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomCircuitConfig::default();
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.to_string(), b.to_string());
        let c = generate(&RandomCircuitConfig { seed: 7, ..cfg }).unwrap();
        assert_ne!(a.to_string(), c.to_string());
    }

    #[test]
    fn locality_changes_structure() {
        // Low locality pulls inputs from far away: depth shrinks, fan-out
        // concentrates differently. Just check both generate and differ.
        let local = generate(&RandomCircuitConfig {
            locality: 0.98,
            ..RandomCircuitConfig::default()
        })
        .unwrap();
        let global = generate(&RandomCircuitConfig {
            locality: 0.1,
            ..RandomCircuitConfig::default()
        })
        .unwrap();
        assert_ne!(local.to_string(), global.to_string());
    }

    #[test]
    fn scales_to_thousands_of_gates() {
        let nl = generate(&RandomCircuitConfig {
            gates: 5000,
            inputs: 64,
            ..RandomCircuitConfig::default()
        })
        .unwrap();
        assert_eq!(nl.num_gates(), 5000);
        assert!(nl.validate().is_ok());
    }
}
