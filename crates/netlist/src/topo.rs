//! Topological analysis: gate ordering, logic levels, transitive fan-in /
//! fan-out cones, and subcircuit extraction.
//!
//! These are the structural primitives behind the paper's constructions:
//! `C_ψ^fo` is the transitive fan-out of the fault net, and `C_ψ^sub` is the
//! transitive fan-in of that fan-out (Section 2, Figure 3).

use crate::{GateId, NetId, Netlist, NetlistError};

/// Computes a topological order of the gates (inputs before users).
///
/// # Errors
///
/// [`NetlistError::Cycle`] naming a net on a combinational cycle.
pub fn topo_order(nl: &Netlist) -> Result<Vec<GateId>, NetlistError> {
    let mut pending = vec![0usize; nl.num_gates()];
    let mut ready = Vec::new();
    for (gid, gate) in nl.gates() {
        let n = gate
            .inputs
            .iter()
            .filter(|&&inp| nl.net(inp).driver.is_some())
            .count();
        pending[gid.index()] = n;
        if n == 0 {
            ready.push(gid);
        }
    }
    let fanouts = nl.fanouts();
    let mut order = Vec::with_capacity(nl.num_gates());
    while let Some(gid) = ready.pop() {
        order.push(gid);
        let out = nl.gate(gid).output;
        for &user in &fanouts[out.index()] {
            // A gate may read the same net several times; decrement once per
            // occurrence. `fanouts` already lists one entry per occurrence.
            pending[user.index()] -= 1;
            if pending[user.index()] == 0 {
                ready.push(user);
            }
        }
    }
    if order.len() != nl.num_gates() {
        let stuck = nl
            .gate_ids()
            .find(|g| pending[g.index()] > 0)
            .expect("some gate must be unprocessed");
        return Err(NetlistError::Cycle(
            nl.net(nl.gate(stuck).output).name.clone(),
        ));
    }
    Ok(order)
}

/// Logic level of every net: inputs at level 0, a gate output one more than
/// its deepest input.
///
/// # Panics
///
/// Panics if the netlist has a cycle or undriven internal nets; call
/// [`Netlist::validate`] first.
pub fn levels(nl: &Netlist) -> Vec<usize> {
    let order = topo_order(nl).expect("levels requires an acyclic netlist");
    let mut level = vec![0usize; nl.num_nets()];
    for gid in order {
        let gate = nl.gate(gid);
        let l = gate
            .inputs
            .iter()
            .map(|&i| level[i.index()])
            .max()
            .unwrap_or(0);
        level[gate.output.index()] = l + 1;
    }
    level
}

/// Depth of the circuit: the maximum net level.
pub fn depth(nl: &Netlist) -> usize {
    levels(nl).into_iter().max().unwrap_or(0)
}

/// Per-net marker of the transitive fan-in of `roots` (the roots included).
pub fn transitive_fanin(nl: &Netlist, roots: &[NetId]) -> Vec<bool> {
    let mut seen = vec![false; nl.num_nets()];
    let mut stack: Vec<NetId> = roots.to_vec();
    while let Some(net) = stack.pop() {
        if seen[net.index()] {
            continue;
        }
        seen[net.index()] = true;
        if let Some(g) = nl.net(net).driver {
            for &inp in &nl.gate(g).inputs {
                if !seen[inp.index()] {
                    stack.push(inp);
                }
            }
        }
    }
    seen
}

/// Per-net marker of the transitive fan-out of `root` (the root included).
pub fn transitive_fanout(nl: &Netlist, root: NetId) -> Vec<bool> {
    let fanouts = nl.fanouts();
    let mut seen = vec![false; nl.num_nets()];
    let mut stack = vec![root];
    while let Some(net) = stack.pop() {
        if seen[net.index()] {
            continue;
        }
        seen[net.index()] = true;
        for &user in &fanouts[net.index()] {
            let out = nl.gate(user).output;
            if !seen[out.index()] {
                stack.push(out);
            }
        }
    }
    seen
}

/// The gates whose output lies in the transitive fan-out of `root`, in
/// topological order, excluding the driver of `root` itself.
///
/// This is exactly the set of gates a stuck-at fault on `root` can
/// influence: re-evaluating them in order (with `root` forced) updates
/// every net that can differ from the good circuit. The root's own driver
/// is excluded because the fault overrides it.
///
/// `order` must be a topological order of `nl` (e.g. from [`topo_order`]);
/// passing it in lets callers amortize the sort across many faults.
pub fn fanout_cone_gates(nl: &Netlist, order: &[GateId], root: NetId) -> Vec<GateId> {
    let fo = transitive_fanout(nl, root);
    order
        .iter()
        .copied()
        .filter(|&g| {
            let out = nl.gate(g).output;
            fo[out.index()] && out != root
        })
        .collect()
}

/// Result of [`extract_cone`]: the extracted subcircuit plus the mapping
/// from old net ids to new ones (dense `Vec`, `None` for nets outside the
/// cone).
#[derive(Debug, Clone)]
pub struct ConeExtraction {
    /// The extracted subcircuit. Net names are preserved.
    pub netlist: Netlist,
    /// `net_map[old.index()]` is the corresponding net in `netlist`.
    pub net_map: Vec<Option<NetId>>,
}

/// Extracts the transitive fan-in cone of `outputs` as a standalone
/// netlist. The listed nets become the primary outputs of the extraction;
/// original primary inputs inside the cone remain primary inputs.
///
/// # Panics
///
/// Panics if the source netlist has a cycle; validate it first.
pub fn extract_cone(nl: &Netlist, outputs: &[NetId]) -> ConeExtraction {
    let keep = transitive_fanin(nl, outputs);
    extract_marked(nl, &keep, outputs)
}

/// Extracts the subcircuit induced by a per-net marker. Any marked net
/// whose driver gate has an unmarked input becomes a primary input of the
/// extraction (its logic is cut away), as does any marked original primary
/// input. `outputs` lists the nets to expose as primary outputs.
///
/// This generalized form is what the ATPG miter construction needs: the
/// fan-out cone `C_ψ^fo` is a marked region whose side inputs come from the
/// surrounding circuit.
pub fn extract_marked(nl: &Netlist, keep: &[bool], outputs: &[NetId]) -> ConeExtraction {
    let mut sub = Netlist::new(format!("{}_cone", nl.name()));
    let mut net_map: Vec<Option<NetId>> = vec![None; nl.num_nets()];

    // Pass 1: create all kept nets. A kept net is an input of the extraction
    // if it is an original PI, or if its driver is missing / has any
    // un-kept input net.
    for (id, net) in nl.nets() {
        if !keep[id.index()] {
            continue;
        }
        let treat_as_input = match net.driver {
            None => true,
            Some(g) => nl.gate(g).inputs.iter().any(|&i| !keep[i.index()]),
        };
        let new_id = if treat_as_input {
            sub.try_add_input(net.name.clone())
                .expect("names unique in source")
        } else {
            sub.add_net(net.name.clone())
                .expect("names unique in source")
        };
        net_map[id.index()] = Some(new_id);
    }

    // Pass 2: recreate drivers of non-input kept nets.
    for (id, net) in nl.nets() {
        let Some(new_id) = net_map[id.index()] else {
            continue;
        };
        if sub.is_input(new_id) {
            continue;
        }
        let g = nl.gate(net.driver.expect("non-input kept net has driver"));
        let inputs: Vec<NetId> = g
            .inputs
            .iter()
            .map(|&i| net_map[i.index()].expect("kept gate input is kept"))
            .collect();
        sub.drive_net(new_id, g.kind, inputs)
            .expect("extraction preserves well-formedness");
    }

    for &o in outputs {
        if let Some(new_o) = net_map[o.index()] {
            sub.add_output(new_o);
        }
    }
    ConeExtraction {
        netlist: sub,
        net_map,
    }
}

/// The nets of `C_ψ^sub` for a fault on net `x`: the transitive fan-in of
/// the transitive fan-out of `x`, together with the primary outputs reached
/// by `x` (the outputs of `C_ψ^sub`).
pub fn fault_subcircuit_nets(nl: &Netlist, x: NetId) -> (Vec<bool>, Vec<NetId>) {
    let fo = transitive_fanout(nl, x);
    let affected: Vec<NetId> = nl
        .outputs()
        .iter()
        .copied()
        .filter(|o| fo[o.index()])
        .collect();
    let roots: Vec<NetId> = fo
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(i, _)| NetId::from_index(i))
        .collect();
    let sub = transitive_fanin(nl, &roots);
    (sub, affected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    /// The circuit of Figure 4(a) in the paper:
    /// f = OR(b, !c); g = NAND-ish structure; here verbatim:
    /// f = OR(b, c') ; g = AND(d, e)' ... We use the clause structure:
    /// f = OR(b, NOT c), g = NAND(d, e), h = AND(a, f), i = AND(h, g), out i.
    pub(crate) fn fig4a() -> Netlist {
        let mut nl = Netlist::new("fig4a");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let e = nl.add_input("e");
        let nc = nl.add_gate_named(GateKind::Not, vec![c], "c_n").unwrap();
        let f = nl.add_gate_named(GateKind::Or, vec![b, nc], "f").unwrap();
        let g = nl.add_gate_named(GateKind::Nand, vec![d, e], "g").unwrap();
        let h = nl.add_gate_named(GateKind::And, vec![a, f], "h").unwrap();
        let i = nl.add_gate_named(GateKind::And, vec![h, g], "i").unwrap();
        nl.add_output(i);
        nl
    }

    #[test]
    fn topo_is_consistent() {
        let nl = fig4a();
        let order = topo_order(&nl).unwrap();
        assert_eq!(order.len(), nl.num_gates());
        let mut pos = vec![0; nl.num_gates()];
        for (p, g) in order.iter().enumerate() {
            pos[g.index()] = p;
        }
        for (gid, gate) in nl.gates() {
            for &inp in &gate.inputs {
                if let Some(drv) = nl.net(inp).driver {
                    assert!(pos[drv.index()] < pos[gid.index()]);
                }
            }
        }
    }

    #[test]
    fn levels_and_depth() {
        let nl = fig4a();
        let lv = levels(&nl);
        let f = nl.find_net("f").unwrap();
        let i = nl.find_net("i").unwrap();
        assert_eq!(lv[nl.find_net("a").unwrap().index()], 0);
        assert_eq!(lv[f.index()], 2); // via NOT c
        assert_eq!(lv[i.index()], 4);
        assert_eq!(depth(&nl), 4);
    }

    #[test]
    fn fanin_cone_of_output_is_everything() {
        let nl = fig4a();
        let i = nl.find_net("i").unwrap();
        let cone = transitive_fanin(&nl, &[i]);
        assert!(cone.iter().all(|&b| b));
    }

    #[test]
    fn fanout_cone_of_f() {
        let nl = fig4a();
        let f = nl.find_net("f").unwrap();
        let fo = transitive_fanout(&nl, f);
        let names: Vec<&str> = nl
            .nets()
            .filter(|(id, _)| fo[id.index()])
            .map(|(_, n)| n.name.as_str())
            .collect();
        assert_eq!(names, vec!["f", "h", "i"]);
    }

    #[test]
    fn fanout_cone_gates_of_f() {
        let nl = fig4a();
        let order = topo_order(&nl).unwrap();
        let f = nl.find_net("f").unwrap();
        let cone = fanout_cone_gates(&nl, &order, f);
        // f's fan-out nets are {f, h, i}; f's own driver is excluded, so
        // the cone gates drive h and i, in that order.
        let names: Vec<&str> = cone
            .iter()
            .map(|&g| nl.net(nl.gate(g).output).name.as_str())
            .collect();
        assert_eq!(names, vec!["h", "i"]);
    }

    #[test]
    fn fanout_cone_gates_of_input() {
        // A primary input has no driver; its cone is every gate downstream.
        let nl = fig4a();
        let order = topo_order(&nl).unwrap();
        let a = nl.find_net("a").unwrap();
        let cone = fanout_cone_gates(&nl, &order, a);
        let names: Vec<&str> = cone
            .iter()
            .map(|&g| nl.net(nl.gate(g).output).name.as_str())
            .collect();
        assert_eq!(names, vec!["h", "i"]);
    }

    #[test]
    fn extract_cone_of_internal_net() {
        let nl = fig4a();
        let f = nl.find_net("f").unwrap();
        let ext = extract_cone(&nl, &[f]);
        let sub = &ext.netlist;
        assert!(sub.validate().is_ok());
        assert_eq!(sub.num_inputs(), 2); // b, c
        assert_eq!(sub.num_gates(), 2); // NOT, OR
        assert_eq!(sub.num_outputs(), 1);
        assert!(sub.find_net("f").is_some());
        assert!(sub.find_net("a").is_none());
    }

    #[test]
    fn fault_subcircuit_of_f_is_whole_circuit() {
        // The fan-out of f reaches the only output; its fan-in cone pulls in
        // everything.
        let nl = fig4a();
        let f = nl.find_net("f").unwrap();
        let (sub, outs) = fault_subcircuit_nets(&nl, f);
        assert!(sub.iter().all(|&b| b));
        assert_eq!(outs, vec![nl.find_net("i").unwrap()]);
    }

    #[test]
    fn fault_subcircuit_of_g_excludes_bc_side_logic() {
        let nl = fig4a();
        let g = nl.find_net("g").unwrap();
        let (sub, _) = fault_subcircuit_nets(&nl, g);
        // g's fanout is {g, i}; fanin of that is everything except nothing —
        // i depends on h which depends on a and f... so all nets again.
        assert!(sub[nl.find_net("h").unwrap().index()]);
        // But a fault on h: fanout {h, i}; fanin includes g,d,e as side inputs.
        let h = nl.find_net("h").unwrap();
        let (sub_h, outs_h) = fault_subcircuit_nets(&nl, h);
        assert!(sub_h.iter().all(|&b| b));
        assert_eq!(outs_h.len(), 1);
    }

    #[test]
    fn cycle_detected() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let x = nl.add_net("x").unwrap();
        let y = nl.add_gate_named(GateKind::And, vec![a, x], "y").unwrap();
        nl.drive_net(x, GateKind::Buf, vec![y]).unwrap();
        nl.add_output(y);
        assert!(matches!(topo_order(&nl), Err(NetlistError::Cycle(_))));
    }

    #[test]
    fn extract_marked_cuts_side_inputs() {
        // Mark only {f, h, i}: h's input a and i's input g become PIs.
        let nl = fig4a();
        let mut keep = vec![false; nl.num_nets()];
        for name in ["f", "h", "i"] {
            keep[nl.find_net(name).unwrap().index()] = true;
        }
        let i = nl.find_net("i").unwrap();
        let ext = extract_marked(&nl, &keep, &[i]);
        let sub = &ext.netlist;
        assert!(sub.validate().is_ok());
        // Each of f, h, i has at least one un-kept input net, so each
        // becomes a primary input of the extraction and no gate survives.
        assert!(sub.is_input(sub.find_net("f").unwrap()));
        assert!(sub.is_input(sub.find_net("h").unwrap()));
        assert!(sub.is_input(sub.find_net("i").unwrap()));
        assert_eq!(sub.num_gates(), 0);
    }

    #[test]
    fn extract_marked_gate_survives_when_all_inputs_kept() {
        let nl = fig4a();
        let mut keep = vec![false; nl.num_nets()];
        for name in ["a", "f", "h"] {
            keep[nl.find_net(name).unwrap().index()] = true;
        }
        let h = nl.find_net("h").unwrap();
        let ext = extract_marked(&nl, &keep, &[h]);
        let sub = &ext.netlist;
        assert!(sub.validate().is_ok());
        assert_eq!(sub.num_gates(), 1); // h = AND(a, f)
        assert!(sub.is_input(sub.find_net("a").unwrap()));
        assert!(sub.is_input(sub.find_net("f").unwrap()));
    }
}
