//! Structural circuit statistics.

use std::fmt;

use crate::{topo, Netlist};

/// Summary statistics of a [`Netlist`], as reported by the experiment
/// harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of gates.
    pub gates: usize,
    /// Number of nets (including inputs).
    pub nets: usize,
    /// Largest gate fan-in (`k_fi`).
    pub max_fanin: usize,
    /// Largest net fan-out (`k_fo`).
    pub max_fanout: usize,
    /// Logic depth (levels).
    pub depth: usize,
}

impl CircuitStats {
    /// Gathers statistics for a netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is cyclic.
    pub fn of(nl: &Netlist) -> Self {
        CircuitStats {
            inputs: nl.num_inputs(),
            outputs: nl.num_outputs(),
            gates: nl.num_gates(),
            nets: nl.num_nets(),
            max_fanin: nl.max_fanin(),
            max_fanout: nl.max_fanout(),
            depth: topo::depth(nl),
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} PI, {} PO, {} gates, {} nets, fanin<={}, fanout<={}, depth {}",
            self.inputs,
            self.outputs,
            self.gates,
            self.nets,
            self.max_fanin,
            self.max_fanout,
            self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateKind, Netlist};

    #[test]
    fn stats_of_small_circuit() {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate_named(GateKind::And, vec![a, b], "x").unwrap();
        let y = nl.add_gate_named(GateKind::Not, vec![x], "y").unwrap();
        nl.add_output(y);
        let st = CircuitStats::of(&nl);
        assert_eq!(st.inputs, 2);
        assert_eq!(st.gates, 2);
        assert_eq!(st.depth, 2);
        assert_eq!(st.max_fanin, 2);
        assert!(st.to_string().contains("2 gates"));
    }
}

/// Reconvergence statistics — the quantitative version of the paper's
/// "treeness" intuition (Sections 5.1 and 7: log-bounded-width requires
/// only a *minimality of reconvergence*).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReconvergenceStats {
    /// Nets feeding more than one gate (fan-out stems).
    pub stems: usize,
    /// Stems whose branches meet again at some gate downstream.
    pub reconvergent_stems: usize,
    /// Reconvergent stems whose *nearest* meeting gate is within
    /// [`LOCAL_RECONVERGENCE_LEVELS`] logic levels — the "local
    /// reconvergence" k-boundedness tolerates (paper Section 3.2).
    pub local_reconvergent_stems: usize,
    /// Reconvergent stems meeting only beyond that horizon — the deep
    /// reconvergence that actually drives cut-width up.
    pub nonlocal_reconvergent_stems: usize,
    /// Nets in the circuit.
    pub nets: usize,
}

/// Level horizon separating "local" from "non-local" reconvergence.
pub const LOCAL_RECONVERGENCE_LEVELS: usize = 4;

impl ReconvergenceStats {
    /// Fraction of nets that are reconvergent stems — 0.0 for trees.
    pub fn reconvergence_fraction(&self) -> f64 {
        if self.nets == 0 {
            0.0
        } else {
            self.reconvergent_stems as f64 / self.nets as f64
        }
    }

    /// Fraction of nets whose branches reconverge non-locally.
    pub fn nonlocal_fraction(&self) -> f64 {
        if self.nets == 0 {
            0.0
        } else {
            self.nonlocal_reconvergent_stems as f64 / self.nets as f64
        }
    }
}

/// Measures the circuit's reconvergence: for each fan-out stem, walk the
/// transitive fan-out and check whether some gate reads the stem's signal
/// through two or more distinct input nets. Trees (and k-bounded block
/// forests at the block level) have none.
///
/// # Panics
///
/// Panics if the netlist is cyclic.
pub fn reconvergence(nl: &crate::Netlist) -> ReconvergenceStats {
    let fanouts = nl.fanouts();
    let levels = crate::topo::levels(nl);
    let mut stats = ReconvergenceStats {
        nets: nl.num_nets(),
        ..Default::default()
    };
    for (stem, _) in nl.nets() {
        if fanouts[stem.index()].len() < 2 {
            continue;
        }
        stats.stems += 1;
        // Mark nets reachable from the stem; the nearest gate reading two
        // reached inputs is the first reconvergence point.
        let reach = crate::topo::transitive_fanout(nl, stem);
        let nearest: Option<usize> = nl
            .gates()
            .filter(|(_, gate)| gate.inputs.iter().filter(|i| reach[i.index()]).count() >= 2)
            .map(|(_, gate)| levels[gate.output.index()].saturating_sub(levels[stem.index()]))
            .min();
        if let Some(distance) = nearest {
            stats.reconvergent_stems += 1;
            if distance <= LOCAL_RECONVERGENCE_LEVELS {
                stats.local_reconvergent_stems += 1;
            } else {
                stats.nonlocal_reconvergent_stems += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod reconvergence_tests {
    use super::*;
    use crate::{GateKind, Netlist};

    #[test]
    fn trees_have_no_reconvergence() {
        let mut nl = Netlist::new("tree");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let t = nl.add_gate_named(GateKind::And, vec![a, b], "t").unwrap();
        let y = nl.add_gate_named(GateKind::Or, vec![t, c], "y").unwrap();
        nl.add_output(y);
        let r = reconvergence(&nl);
        assert_eq!(r.stems, 0);
        assert_eq!(r.reconvergent_stems, 0);
        assert_eq!(r.reconvergence_fraction(), 0.0);
    }

    #[test]
    fn xor_form_reconverges() {
        // y = (a AND !b) OR (!a AND b): both a and b are reconvergent stems.
        let mut nl = Netlist::new("xor");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let na = nl.add_gate_named(GateKind::Not, vec![a], "na").unwrap();
        let nb = nl.add_gate_named(GateKind::Not, vec![b], "nb").unwrap();
        let t1 = nl.add_gate_named(GateKind::And, vec![a, nb], "t1").unwrap();
        let t2 = nl.add_gate_named(GateKind::And, vec![na, b], "t2").unwrap();
        let y = nl.add_gate_named(GateKind::Or, vec![t1, t2], "y").unwrap();
        nl.add_output(y);
        let r = reconvergence(&nl);
        assert_eq!(r.stems, 2);
        assert_eq!(r.reconvergent_stems, 2);
        // XOR-shaped reconvergence happens within two levels: local.
        assert_eq!(r.local_reconvergent_stems, 2);
        assert_eq!(r.nonlocal_reconvergent_stems, 0);
    }

    #[test]
    fn deep_reconvergence_is_nonlocal() {
        // A stem whose branches meet only after a long inverter chain.
        let mut nl = Netlist::new("deep");
        let a = nl.add_input("a");
        let mut long = nl.add_gate_named(GateKind::Not, vec![a], "c0").unwrap();
        for i in 1..8 {
            long = nl
                .add_gate_named(GateKind::Not, vec![long], format!("c{i}"))
                .unwrap();
        }
        let y = nl
            .add_gate_named(GateKind::And, vec![a, long], "y")
            .unwrap();
        nl.add_output(y);
        let r = reconvergence(&nl);
        assert_eq!(r.reconvergent_stems, 1);
        assert_eq!(r.nonlocal_reconvergent_stems, 1);
        assert_eq!(r.local_reconvergent_stems, 0);
    }

    #[test]
    fn fanout_without_reconvergence() {
        // a feeds two gates whose outputs go to separate POs: a stem, but
        // no reconvergence.
        let mut nl = Netlist::new("fan");
        let a = nl.add_input("a");
        let x = nl.add_gate_named(GateKind::Not, vec![a], "x").unwrap();
        let y = nl.add_gate_named(GateKind::Buf, vec![a], "y").unwrap();
        nl.add_output(x);
        nl.add_output(y);
        let r = reconvergence(&nl);
        assert_eq!(r.stems, 1);
        assert_eq!(r.reconvergent_stems, 0);
    }
}
