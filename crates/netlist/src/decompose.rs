//! Technology decomposition to bounded-fan-in AND/OR networks with
//! inversions — our stand-in for the SIS `tech_decomp` pass the paper uses
//! to pre-process every benchmark (Section 5.2.2).
//!
//! After [`decompose`] every gate is `And`, `Or`, `Not`, `Buf`, `Const0` or
//! `Const1`, and every `And`/`Or` has at most `max_fanin` inputs. NAND/NOR
//! become an AND/OR tree followed by an inverter; XOR/XNOR expand to the
//! two-level AND-OR form, combined in a balanced binary tree.

use crate::{topo, GateKind, NetId, Netlist, NetlistError};

/// How wide gates are broken into bounded-fan-in trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Balanced reduction tree (depth `⌈log_k(fanin)⌉`) — what SIS
    /// `tech_decomp` produces and the experiments use.
    #[default]
    Balanced,
    /// Left-deep chain (depth `fanin − 1`) — the ablation alternative:
    /// chains keep the *cut-width* of the decomposed gate low (a chain is
    /// a path) at the cost of logic depth.
    Chain,
}

/// Decomposes `nl` into an equivalent network of at-most-`max_fanin`-input
/// AND/OR gates plus inverters and buffers. Original net names are kept for
/// nets that survive; helper nets get `_d<N>` names.
///
/// # Errors
///
/// [`NetlistError::Cycle`] if the source is cyclic. Any other error would
/// indicate an internal bug and is propagated as-is.
///
/// # Panics
///
/// Panics if `max_fanin < 2`.
pub fn decompose(nl: &Netlist, max_fanin: usize) -> Result<Netlist, NetlistError> {
    decompose_with(nl, max_fanin, Strategy::Balanced)
}

/// [`decompose`] with an explicit tree [`Strategy`].
///
/// # Errors
///
/// See [`decompose`].
///
/// # Panics
///
/// Panics if `max_fanin < 2`.
pub fn decompose_with(
    nl: &Netlist,
    max_fanin: usize,
    strategy: Strategy,
) -> Result<Netlist, NetlistError> {
    assert!(max_fanin >= 2, "max_fanin must be at least 2");
    let order = topo::topo_order(nl)?;
    let mut out = Netlist::new(format!("{}_dec{}", nl.name(), max_fanin));
    let mut map: Vec<Option<NetId>> = vec![None; nl.num_nets()];
    let mut fresh = 0usize;

    for &inp in nl.inputs() {
        let new = out.try_add_input(nl.net(inp).name.clone())?;
        map[inp.index()] = Some(new);
    }

    let mut helper = |out: &mut Netlist, kind: GateKind, inputs: Vec<NetId>| -> NetId {
        loop {
            let name = format!("_d{fresh}");
            fresh += 1;
            match out.add_gate_named(kind, inputs.clone(), name) {
                Ok(id) => return id,
                Err(NetlistError::DuplicateName(_)) => continue,
                Err(e) => panic!("internal decomposition error: {e}"),
            }
        }
    };

    // Builds a reduction tree of `kind` over `ins`, bounded fan-in.
    fn tree(
        out: &mut Netlist,
        helper: &mut impl FnMut(&mut Netlist, GateKind, Vec<NetId>) -> NetId,
        kind: GateKind,
        mut ins: Vec<NetId>,
        k: usize,
        strategy: Strategy,
    ) -> NetId {
        debug_assert!(!ins.is_empty());
        match strategy {
            Strategy::Balanced => {
                while ins.len() > k {
                    let mut next = Vec::with_capacity(ins.len().div_ceil(k));
                    for chunk in ins.chunks(k) {
                        if chunk.len() == 1 {
                            next.push(chunk[0]);
                        } else {
                            next.push(helper(out, kind, chunk.to_vec()));
                        }
                    }
                    ins = next;
                }
                if ins.len() == 1 {
                    ins[0]
                } else {
                    helper(out, kind, ins)
                }
            }
            Strategy::Chain => {
                // Left-deep: absorb k inputs, then k−1 more per level.
                let mut acc = if ins.len() <= k {
                    return if ins.len() == 1 {
                        ins[0]
                    } else {
                        helper(out, kind, ins)
                    };
                } else {
                    helper(out, kind, ins[..k].to_vec())
                };
                let mut rest = &ins[k..];
                while !rest.is_empty() {
                    let take = (k - 1).min(rest.len());
                    let mut args = vec![acc];
                    args.extend_from_slice(&rest[..take]);
                    acc = helper(out, kind, args);
                    rest = &rest[take..];
                }
                acc
            }
        }
    }

    // XOR of exactly two nets in AND-OR-INV form.
    fn xor2(
        out: &mut Netlist,
        helper: &mut impl FnMut(&mut Netlist, GateKind, Vec<NetId>) -> NetId,
        a: NetId,
        b: NetId,
    ) -> NetId {
        let na = helper(out, GateKind::Not, vec![a]);
        let nb = helper(out, GateKind::Not, vec![b]);
        let t1 = helper(out, GateKind::And, vec![a, nb]);
        let t2 = helper(out, GateKind::And, vec![na, b]);
        helper(out, GateKind::Or, vec![t1, t2])
    }

    for gid in order {
        let gate = nl.gate(gid);
        let ins: Vec<NetId> = gate
            .inputs
            .iter()
            .map(|&i| map[i.index()].expect("topological order maps inputs first"))
            .collect();
        let name = nl.net(gate.output).name.clone();
        let result = match gate.kind {
            GateKind::And | GateKind::Or => {
                if ins.len() <= max_fanin {
                    out.add_gate_named(gate.kind, ins, name)?
                } else {
                    let t = tree(&mut out, &mut helper, gate.kind, ins, max_fanin, strategy);
                    // Final level needs the original name: rebuild via BUF if
                    // the tree collapsed to a helper net.
                    out.add_gate_named(GateKind::Buf, vec![t], name)?
                }
            }
            GateKind::Nand | GateKind::Nor => {
                let base = if gate.kind == GateKind::Nand {
                    GateKind::And
                } else {
                    GateKind::Or
                };
                let t = if ins.len() == 1 {
                    ins[0]
                } else {
                    tree(&mut out, &mut helper, base, ins, max_fanin, strategy)
                };
                out.add_gate_named(GateKind::Not, vec![t], name)?
            }
            GateKind::Xor | GateKind::Xnor => {
                let mut acc = ins[0];
                for &next in &ins[1..] {
                    acc = xor2(&mut out, &mut helper, acc, next);
                }
                if gate.kind == GateKind::Xor {
                    out.add_gate_named(GateKind::Buf, vec![acc], name)?
                } else {
                    out.add_gate_named(GateKind::Not, vec![acc], name)?
                }
            }
            GateKind::Not | GateKind::Buf => out.add_gate_named(gate.kind, ins, name)?,
            GateKind::Const0 | GateKind::Const1 => out.add_gate_named(gate.kind, vec![], name)?,
        };
        map[gate.output.index()] = Some(result);
    }

    for &o in nl.outputs() {
        out.add_output(map[o.index()].expect("outputs are driven"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;
    use crate::{GateKind, Netlist};

    fn equivalent(a: &Netlist, b: &Netlist) -> bool {
        assert_eq!(a.num_inputs(), b.num_inputs());
        let n = a.num_inputs();
        assert!(n <= 12, "exhaustive check only for small circuits");
        for m in 0u32..(1 << n) {
            let ins: Vec<bool> = (0..n).map(|i| m >> i & 1 != 0).collect();
            if sim::eval_outputs(a, &ins) != sim::eval_outputs(b, &ins) {
                return false;
            }
        }
        true
    }

    fn wide(kind: GateKind, n: usize) -> Netlist {
        let mut nl = Netlist::new("wide");
        let ins: Vec<_> = (0..n).map(|i| nl.add_input(format!("x{i}"))).collect();
        let y = nl.add_gate_named(kind, ins, "y").unwrap();
        nl.add_output(y);
        nl
    }

    #[test]
    fn wide_and_decomposes_equivalently() {
        for n in [2, 3, 5, 9] {
            let nl = wide(GateKind::And, n);
            let dec = decompose(&nl, 3).unwrap();
            assert!(dec.validate().is_ok());
            assert!(dec.max_fanin() <= 3);
            assert!(equivalent(&nl, &dec), "AND{n}");
        }
    }

    #[test]
    fn all_kinds_decompose_equivalently() {
        for kind in [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for n in [1, 2, 4, 7] {
                let nl = wide(kind, n);
                let dec = decompose(&nl, 3).unwrap();
                assert!(dec.max_fanin() <= 3, "{kind} fanin");
                assert!(
                    dec.gates().all(|(_, g)| matches!(
                        g.kind,
                        GateKind::And | GateKind::Or | GateKind::Not | GateKind::Buf
                    )),
                    "{kind} kinds"
                );
                assert!(equivalent(&nl, &dec), "{kind}{n}");
            }
        }
    }

    #[test]
    fn fanin_two_target() {
        let nl = wide(GateKind::Nor, 6);
        let dec = decompose(&nl, 2).unwrap();
        assert!(dec.max_fanin() <= 2);
        assert!(equivalent(&nl, &dec));
    }

    #[test]
    fn names_preserved_for_original_nets() {
        let nl = wide(GateKind::Xor, 4);
        let dec = decompose(&nl, 3).unwrap();
        assert!(dec.find_net("y").is_some());
        assert!(dec.find_net("x0").is_some());
        assert!(dec.is_output(dec.find_net("y").unwrap()));
    }

    #[test]
    fn constants_pass_through() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let k = nl.add_gate_named(GateKind::Const1, vec![], "k").unwrap();
        let y = nl.add_gate_named(GateKind::And, vec![a, k], "y").unwrap();
        nl.add_output(y);
        let dec = decompose(&nl, 2).unwrap();
        assert!(equivalent(&nl, &dec));
    }
}

#[cfg(test)]
mod strategy_tests {
    use super::*;
    use crate::{sim, topo, GateKind, Netlist};

    fn wide(kind: GateKind, n: usize) -> Netlist {
        let mut nl = Netlist::new("wide");
        let ins: Vec<_> = (0..n).map(|i| nl.add_input(format!("x{i}"))).collect();
        let y = nl.add_gate_named(kind, ins, "y").unwrap();
        nl.add_output(y);
        nl
    }

    #[test]
    fn chain_is_equivalent_to_balanced() {
        for kind in [GateKind::And, GateKind::Nor, GateKind::Xor] {
            let nl = wide(kind, 9);
            let bal = decompose_with(&nl, 2, Strategy::Balanced).unwrap();
            let chain = decompose_with(&nl, 2, Strategy::Chain).unwrap();
            for m in 0u32..(1 << 9) {
                let ins: Vec<bool> = (0..9).map(|i| m >> i & 1 != 0).collect();
                assert_eq!(
                    sim::eval_outputs(&bal, &ins),
                    sim::eval_outputs(&chain, &ins),
                    "{kind} minterm {m}"
                );
            }
        }
    }

    #[test]
    fn chain_is_deeper_than_balanced() {
        let nl = wide(GateKind::And, 16);
        let bal = decompose_with(&nl, 2, Strategy::Balanced).unwrap();
        let chain = decompose_with(&nl, 2, Strategy::Chain).unwrap();
        assert!(topo::depth(&chain) > topo::depth(&bal));
        // +1 for the name-preserving buffer on the tree root.
        assert_eq!(topo::depth(&bal), 4 + 1, "balanced: log2(16) + buf");
        assert_eq!(topo::depth(&chain), 15 + 1, "chain: n-1 + buf");
    }

    #[test]
    fn both_respect_fanin_bound() {
        let nl = wide(GateKind::Or, 11);
        for s in [Strategy::Balanced, Strategy::Chain] {
            let dec = decompose_with(&nl, 3, s).unwrap();
            assert!(dec.max_fanin() <= 3, "{s:?}");
            assert!(dec.validate().is_ok());
        }
    }
}
