//! Error type for netlist construction, validation and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing a
/// [`Netlist`](crate::Netlist).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net name was declared twice.
    DuplicateName(String),
    /// A referenced net name does not exist.
    UnknownNet(String),
    /// A net already has a driver (gate output or primary input).
    MultipleDrivers(String),
    /// A net has no driver.
    Undriven(String),
    /// A gate was given an inadmissible number of inputs for its kind.
    BadFanin {
        /// Gate kind as text (avoids a pub dependency on the enum here).
        kind: String,
        /// The offending input count.
        got: usize,
    },
    /// The network contains a combinational cycle through the named net.
    Cycle(String),
    /// A parse error, with 1-based line number and message.
    Parse {
        /// Line where the problem was detected.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A construct valid in the source format but unsupported here
    /// (e.g. sequential elements in `.bench` files).
    Unsupported(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "duplicate net name `{n}`"),
            NetlistError::UnknownNet(n) => write!(f, "unknown net `{n}`"),
            NetlistError::MultipleDrivers(n) => write!(f, "net `{n}` has multiple drivers"),
            NetlistError::Undriven(n) => write!(f, "net `{n}` has no driver"),
            NetlistError::BadFanin { kind, got } => {
                write!(f, "gate kind {kind} cannot take {got} inputs")
            }
            NetlistError::Cycle(n) => write!(f, "combinational cycle through net `{n}`"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetlistError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 12"));
        assert!(NetlistError::UnknownNet("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
