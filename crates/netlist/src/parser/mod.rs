//! Netlist parsers and writers.
//!
//! - [`mod@bench`]: the ISCAS85 `.bench` format (`INPUT(...)`, `OUTPUT(...)`,
//!   `y = AND(a, b)`), the native format of the ISCAS85 suite.
//! - [`blif`]: a combinational subset of Berkeley BLIF (`.model`,
//!   `.inputs`, `.outputs`, `.names` with SOP covers), the native format of
//!   the MCNC91 suite.

pub mod bench;
pub mod blif;
