//! A combinational subset of Berkeley BLIF, the native format of the MCNC91
//! logic-synthesis benchmarks.
//!
//! Supported constructs: `.model`, `.inputs`, `.outputs`, `.names` with
//! single-output SOP covers (including the `-` don't-care), line
//! continuation with `\`, comments with `#`, `.end`. Latches and
//! subcircuits are rejected.
//!
//! Each `.names` block becomes an AND-OR-INV gate cluster: one AND per cube
//! (with inverters for `0` literals) feeding an OR, complemented when the
//! cover describes the off-set.

use crate::{GateKind, NetId, Netlist, NetlistError};

/// Parses BLIF text into a [`Netlist`].
///
/// # Errors
///
/// [`NetlistError::Parse`] for malformed input,
/// [`NetlistError::Unsupported`] for sequential/hierarchical constructs,
/// plus structural validation errors.
pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
    // Join continuation lines, drop comments, keep 1-based line numbers of
    // the first physical line of each logical line.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut acc = String::new();
    let mut acc_line = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let no_comment = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let mut part = no_comment.trim_end().to_string();
        let continued = part.ends_with('\\');
        if continued {
            part.pop();
        }
        if acc.is_empty() {
            acc_line = line;
        }
        acc.push_str(part.trim());
        acc.push(' ');
        if !continued {
            let s = acc.trim().to_string();
            if !s.is_empty() {
                logical.push((acc_line, s));
            }
            acc.clear();
        }
    }
    if !acc.trim().is_empty() {
        logical.push((acc_line, acc.trim().to_string()));
    }

    let mut nl = Netlist::new("blif");
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut i = 0usize;
    let mut fresh = 0usize;
    // Every signal name in the file, collected up front so that fresh
    // helper nets never collide with a name that only appears on a later
    // line (which would spuriously give that net two drivers).
    let reserved: std::collections::HashSet<&str> = logical
        .iter()
        .filter(|(_, s)| {
            s.starts_with(".inputs") || s.starts_with(".outputs") || s.starts_with(".names")
        })
        .flat_map(|(_, s)| s.split_whitespace().skip(1))
        .collect();

    let lookup_or_add = |nl: &mut Netlist, name: &str| match nl.find_net(name) {
        Some(id) => id,
        None => nl.add_net(name).expect("checked absent"),
    };

    while i < logical.len() {
        let (line, ref s) = logical[i];
        let mut toks = s.split_whitespace();
        let head = toks.next().expect("non-empty logical line");
        match head {
            ".model" => {
                if let Some(name) = toks.next() {
                    nl.set_name(name);
                }
                i += 1;
            }
            ".inputs" => {
                for t in toks {
                    match nl.find_net(t) {
                        Some(id) => nl.mark_input(id)?,
                        None => {
                            nl.try_add_input(t)?;
                        }
                    }
                }
                i += 1;
            }
            ".outputs" => {
                for t in toks {
                    outputs.push((line, t.to_string()));
                }
                i += 1;
            }
            ".names" => {
                let signals: Vec<&str> = toks.collect();
                if signals.is_empty() {
                    return Err(NetlistError::Parse {
                        line,
                        message: ".names needs at least an output".into(),
                    });
                }
                let (in_names, out_name) = signals.split_at(signals.len() - 1);
                let ins: Vec<NetId> = in_names.iter().map(|t| lookup_or_add(&mut nl, t)).collect();
                // Collect cover rows until the next dot-directive.
                i += 1;
                let mut cubes: Vec<(String, char)> = Vec::new();
                while i < logical.len() && !logical[i].1.starts_with('.') {
                    let (rline, ref row) = logical[i];
                    let parts: Vec<&str> = row.split_whitespace().collect();
                    let (pattern, value) = match (parts.len(), in_names.is_empty()) {
                        (1, true) => (String::new(), parts[0]),
                        (2, false) => (parts[0].to_string(), parts[1]),
                        _ => {
                            return Err(NetlistError::Parse {
                                line: rline,
                                message: format!("malformed cover row `{row}`"),
                            })
                        }
                    };
                    if pattern.len() != in_names.len() {
                        return Err(NetlistError::Parse {
                            line: rline,
                            message: "cover row width mismatch".into(),
                        });
                    }
                    let v = match value {
                        "1" => '1',
                        "0" => '0',
                        _ => {
                            return Err(NetlistError::Parse {
                                line: rline,
                                message: format!("bad output value `{value}`"),
                            })
                        }
                    };
                    cubes.push((pattern, v));
                    i += 1;
                }
                build_names(
                    &mut nl,
                    &ins,
                    out_name[0],
                    &cubes,
                    &mut fresh,
                    &reserved,
                    line,
                )?;
            }
            ".end" => {
                i += 1;
            }
            ".latch" | ".subckt" | ".gate" | ".mlatch" => {
                return Err(NetlistError::Unsupported(format!(
                    "BLIF construct `{head}` (line {line})"
                )));
            }
            _ => {
                return Err(NetlistError::Parse {
                    line,
                    message: format!("unknown directive `{head}`"),
                });
            }
        }
    }

    for (line, name) in outputs {
        let id = nl.find_net(&name).ok_or(NetlistError::Parse {
            line,
            message: format!(".outputs references unknown net `{name}`"),
        })?;
        nl.add_output(id);
    }
    nl.validate()?;
    Ok(nl)
}

/// Materializes one `.names` cover as gates driving `out_name`.
fn build_names(
    nl: &mut Netlist,
    ins: &[NetId],
    out_name: &str,
    cubes: &[(String, char)],
    fresh: &mut usize,
    reserved: &std::collections::HashSet<&str>,
    line: usize,
) -> Result<(), NetlistError> {
    let mut helper = |nl: &mut Netlist, kind: GateKind, inputs: Vec<NetId>| -> NetId {
        loop {
            let name = format!("_b{f}", f = *fresh);
            *fresh += 1;
            if reserved.contains(name.as_str()) {
                continue;
            }
            match nl.add_gate_named(kind, inputs.clone(), name) {
                Ok(id) => return id,
                Err(NetlistError::DuplicateName(_)) => continue,
                Err(e) => panic!("internal BLIF build error: {e}"),
            }
        }
    };

    let out_net = match nl.find_net(out_name) {
        Some(id) => id,
        None => nl.add_net(out_name)?,
    };

    // Empty cover: constant 0 (on-set is empty).
    if cubes.is_empty() {
        nl.drive_net(out_net, GateKind::Const0, vec![])?;
        return Ok(());
    }
    let polarity = cubes[0].1;
    if cubes.iter().any(|(_, v)| *v != polarity) {
        return Err(NetlistError::Parse {
            line,
            message: "mixed on-set/off-set cover".into(),
        });
    }

    // Constant node (no inputs, single `1` or `0` row).
    if ins.is_empty() {
        let kind = if polarity == '1' {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        nl.drive_net(out_net, kind, vec![])?;
        return Ok(());
    }

    // Literal positions per cube: (input index, positive?).
    let on = polarity == '1';
    let mut cube_lits: Vec<Vec<(usize, bool)>> = Vec::with_capacity(cubes.len());
    for (pattern, _) in cubes {
        let mut lits = Vec::new();
        for (pos, ch) in pattern.chars().enumerate() {
            match ch {
                '1' => lits.push((pos, true)),
                '0' => lits.push((pos, false)),
                '-' => {}
                other => {
                    return Err(NetlistError::Parse {
                        line,
                        message: format!("bad cube character `{other}`"),
                    })
                }
            }
        }
        cube_lits.push(lits);
    }

    // The last gate drives `out_net` directly, so a cover that denotes a
    // plain gate parses back as exactly that gate and `parse ∘ write` is a
    // fixpoint after one normalization.
    if cube_lits.len() == 1 {
        let lits = &cube_lits[0];
        match lits.as_slice() {
            // `---` row: the function is constant regardless of inputs.
            [] => {
                let kind = if on {
                    GateKind::Const1
                } else {
                    GateKind::Const0
                };
                nl.drive_net(out_net, kind, vec![])?;
            }
            &[(pos, positive)] => {
                let kind = if positive == on {
                    GateKind::Buf
                } else {
                    GateKind::Not
                };
                nl.drive_net(out_net, kind, vec![ins[pos]])?;
            }
            _ => {
                let mapped: Vec<NetId> = lits
                    .iter()
                    .map(|&(pos, positive)| {
                        if positive {
                            ins[pos]
                        } else {
                            helper(nl, GateKind::Not, vec![ins[pos]])
                        }
                    })
                    .collect();
                let kind = if on { GateKind::And } else { GateKind::Nand };
                nl.drive_net(out_net, kind, mapped)?;
            }
        }
        return Ok(());
    }

    // Multi-cube cover: one AND term per cube, OR/NOR of the terms.
    let mut terms: Vec<NetId> = Vec::with_capacity(cube_lits.len());
    for lits in &cube_lits {
        let term = match lits.as_slice() {
            [] => helper(nl, GateKind::Const1, vec![]),
            &[(pos, true)] => ins[pos],
            &[(pos, false)] => helper(nl, GateKind::Not, vec![ins[pos]]),
            _ => {
                let mapped: Vec<NetId> = lits
                    .iter()
                    .map(|&(pos, positive)| {
                        if positive {
                            ins[pos]
                        } else {
                            helper(nl, GateKind::Not, vec![ins[pos]])
                        }
                    })
                    .collect();
                helper(nl, GateKind::And, mapped)
            }
        };
        terms.push(term);
    }
    let kind = if on { GateKind::Or } else { GateKind::Nor };
    nl.drive_net(out_net, kind, terms)?;
    Ok(())
}

/// Writes a netlist as BLIF. Every gate becomes one `.names` block.
///
/// # Errors
///
/// [`NetlistError::Unsupported`] for XOR/XNOR gates wider than 16 inputs
/// (the minterm expansion would be enormous); decompose first.
pub fn write(nl: &Netlist) -> Result<String, NetlistError> {
    let mut s = format!(".model {}\n", nl.name());
    s.push_str(".inputs");
    for &i in nl.inputs() {
        s.push(' ');
        s.push_str(&nl.net(i).name);
    }
    s.push_str("\n.outputs");
    for &o in nl.outputs() {
        s.push(' ');
        s.push_str(&nl.net(o).name);
    }
    s.push('\n');
    for (_, g) in nl.gates() {
        s.push_str(".names");
        for &i in &g.inputs {
            s.push(' ');
            s.push_str(&nl.net(i).name);
        }
        s.push(' ');
        s.push_str(&nl.net(g.output).name);
        s.push('\n');
        let n = g.inputs.len();
        match g.kind {
            GateKind::And => {
                s.push_str(&"1".repeat(n));
                s.push_str(" 1\n");
            }
            GateKind::Nand => {
                s.push_str(&"1".repeat(n));
                s.push_str(" 0\n");
            }
            GateKind::Or => {
                for p in 0..n {
                    let row: String = (0..n).map(|q| if q == p { '1' } else { '-' }).collect();
                    s.push_str(&row);
                    s.push_str(" 1\n");
                }
            }
            GateKind::Nor => {
                s.push_str(&"0".repeat(n));
                s.push_str(" 1\n");
            }
            GateKind::Not => s.push_str("0 1\n"),
            GateKind::Buf => s.push_str("1 1\n"),
            GateKind::Const0 => { /* empty cover = constant 0 */ }
            GateKind::Const1 => s.push_str("1\n"),
            GateKind::Xor | GateKind::Xnor => {
                if n > 16 {
                    return Err(NetlistError::Unsupported(
                        "XOR wider than 16 inputs in BLIF writer".into(),
                    ));
                }
                let want = g.kind == GateKind::Xor;
                for m in 0u32..(1 << n) {
                    let ones = m.count_ones() % 2 == 1;
                    if ones == want {
                        let row: String = (0..n)
                            .map(|q| if m >> q & 1 != 0 { '1' } else { '0' })
                            .collect();
                        s.push_str(&row);
                        s.push_str(" 1\n");
                    }
                }
            }
        }
    }
    s.push_str(".end\n");
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    const MAJ: &str = "\
.model majority
.inputs a b c
.outputs m
.names a b c m
11- 1
1-1 1
-11 1
.end
";

    #[test]
    fn parses_majority() {
        let nl = parse(MAJ).unwrap();
        assert_eq!(nl.name(), "majority");
        assert_eq!(nl.num_inputs(), 3);
        assert_eq!(nl.num_outputs(), 1);
        for m in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|i| m >> i & 1 != 0).collect();
            let expect = ins.iter().filter(|&&b| b).count() >= 2;
            assert_eq!(sim::eval_outputs(&nl, &ins), vec![expect], "minterm {m}");
        }
    }

    #[test]
    fn offset_cover() {
        // y is 0 exactly when a=1,b=1 → y = NAND(a,b).
        let text = ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n";
        let nl = parse(text).unwrap();
        assert_eq!(sim::eval_outputs(&nl, &[true, true]), vec![false]);
        assert_eq!(sim::eval_outputs(&nl, &[true, false]), vec![true]);
    }

    #[test]
    fn constants() {
        let text = ".model t\n.inputs a\n.outputs k0 k1 y\n.names k0\n.names k1\n1\n.names a y\n1 1\n.end\n";
        let nl = parse(text).unwrap();
        assert_eq!(sim::eval_outputs(&nl, &[false]), vec![false, true, false]);
    }

    #[test]
    fn continuation_lines() {
        let text = ".model t\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let nl = parse(text).unwrap();
        assert_eq!(nl.num_inputs(), 2);
    }

    #[test]
    fn latch_rejected() {
        let text = ".model t\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n";
        assert!(matches!(parse(text), Err(NetlistError::Unsupported(_))));
    }

    #[test]
    fn mixed_cover_rejected() {
        let text = ".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n";
        assert!(matches!(parse(text), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn roundtrip_gate_kinds() {
        use crate::{GateKind, Netlist};
        let mut nl = Netlist::new("rt");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        for (idx, kind) in GateKind::ALL.iter().enumerate() {
            let n = match kind {
                GateKind::Not | GateKind::Buf => 1,
                GateKind::Const0 | GateKind::Const1 => 0,
                _ => 3,
            };
            let ins = [a, b, c][..n].to_vec();
            let y = nl.add_gate_named(*kind, ins, format!("y{idx}")).unwrap();
            nl.add_output(y);
        }
        let text = write(&nl).unwrap();
        let nl2 = parse(&text).unwrap();
        for m in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|i| m >> i & 1 != 0).collect();
            assert_eq!(sim::eval_outputs(&nl, &ins), sim::eval_outputs(&nl2, &ins));
        }
    }
}
