//! ISCAS85 `.bench` format parser and writer.
//!
//! The format, as used by the ISCAS85 combinational suite:
//!
//! ```text
//! # comment
//! INPUT(1)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = OR(10, 16)
//! ```
//!
//! Sequential constructs (`DFF`) are rejected — the paper (and this
//! reproduction) treats combinational circuits only.

use crate::{GateKind, Netlist, NetlistError};

fn parse_kind(s: &str, line: usize) -> Result<GateKind, NetlistError> {
    match s.to_ascii_uppercase().as_str() {
        "AND" => Ok(GateKind::And),
        "OR" => Ok(GateKind::Or),
        "NAND" => Ok(GateKind::Nand),
        "NOR" => Ok(GateKind::Nor),
        "XOR" => Ok(GateKind::Xor),
        "XNOR" => Ok(GateKind::Xnor),
        "NOT" | "INV" => Ok(GateKind::Not),
        "BUF" | "BUFF" => Ok(GateKind::Buf),
        // Extension: classic .bench has no constant primitive, but our
        // writer needs one to round-trip generated circuits (e.g. the
        // C6288-like multiplier's tied-off carries).
        "CONST0" => Ok(GateKind::Const0),
        "CONST1" => Ok(GateKind::Const1),
        "DFF" => Err(NetlistError::Unsupported(
            "sequential element DFF in .bench file".into(),
        )),
        other => Err(NetlistError::Parse {
            line,
            message: format!("unknown gate type `{other}`"),
        }),
    }
}

/// Parses `.bench` text into a [`Netlist`].
///
/// # Errors
///
/// [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::Unsupported`] for `DFF`s, and the usual structural
/// errors (duplicate drivers, cycles) surfaced by validation.
pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
    let mut nl = Netlist::new("bench");
    let mut outputs: Vec<(usize, String)> = Vec::new();

    let lookup_or_add = |nl: &mut Netlist, name: &str| match nl.find_net(name) {
        Some(id) => id,
        None => nl.add_net(name).expect("checked absent"),
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stripped = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if stripped.is_empty() {
            continue;
        }
        let upper = stripped.to_ascii_uppercase();
        if upper.starts_with("INPUT") || upper.starts_with("OUTPUT") {
            let open = stripped.find('(').ok_or(NetlistError::Parse {
                line,
                message: "expected `(`".into(),
            })?;
            let close = stripped.rfind(')').ok_or(NetlistError::Parse {
                line,
                message: "expected `)`".into(),
            })?;
            let name = stripped[open + 1..close].trim();
            if name.is_empty() {
                return Err(NetlistError::Parse {
                    line,
                    message: "empty signal name".into(),
                });
            }
            if upper.starts_with("INPUT") {
                match nl.find_net(name) {
                    Some(id) => nl.mark_input(id)?,
                    None => {
                        nl.try_add_input(name)?;
                    }
                }
            } else {
                outputs.push((line, name.to_string()));
            }
            continue;
        }
        // Gate line: `out = KIND(in1, in2, ...)`
        let eq = stripped.find('=').ok_or(NetlistError::Parse {
            line,
            message: "expected `=` in gate definition".into(),
        })?;
        let out_name = stripped[..eq].trim();
        let rhs = stripped[eq + 1..].trim();
        let open = rhs.find('(').ok_or(NetlistError::Parse {
            line,
            message: "expected `(` in gate definition".into(),
        })?;
        let close = rhs.rfind(')').ok_or(NetlistError::Parse {
            line,
            message: "expected `)` in gate definition".into(),
        })?;
        let kind = parse_kind(rhs[..open].trim(), line)?;
        let args = rhs[open + 1..close].trim();
        let inputs: Vec<_> = if args.is_empty() {
            Vec::new()
        } else {
            args.split(',')
                .map(|a| lookup_or_add(&mut nl, a.trim()))
                .collect()
        };
        let out_net = lookup_or_add(&mut nl, out_name);
        nl.drive_net(out_net, kind, inputs)?;
    }

    for (line, name) in outputs {
        let id = nl.find_net(&name).ok_or(NetlistError::Parse {
            line,
            message: format!("OUTPUT references unknown net `{name}`"),
        })?;
        nl.add_output(id);
    }
    nl.validate()?;
    Ok(nl)
}

/// Writes a netlist in `.bench` syntax.
///
/// Constant gates have no classic `.bench` spelling; they are written as
/// the extension `CONST0()` / `CONST1()`, which [`parse`] accepts back.
///
/// # Errors
///
/// Currently infallible; the `Result` is kept for future unsupported
/// constructs (e.g. sequential elements).
pub fn write(nl: &Netlist) -> Result<String, NetlistError> {
    let mut s = format!("# {}\n", nl.name());
    for &i in nl.inputs() {
        s.push_str(&format!("INPUT({})\n", nl.net(i).name));
    }
    for &o in nl.outputs() {
        s.push_str(&format!("OUTPUT({})\n", nl.net(o).name));
    }
    for (_, g) in nl.gates() {
        let kind = match g.kind {
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
        };
        let ins: Vec<&str> = g.inputs.iter().map(|&n| nl.net(n).name.as_str()).collect();
        s.push_str(&format!(
            "{} = {}({})\n",
            nl.net(g.output).name,
            kind,
            ins.join(", ")
        ));
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    const C17: &str = "\
# c17 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let nl = parse(C17).unwrap();
        assert_eq!(nl.num_inputs(), 5);
        assert_eq!(nl.num_outputs(), 2);
        assert_eq!(nl.num_gates(), 6);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn c17_functionality() {
        // With all inputs 0: 10 = 1, 11 = 1, 16 = 1, 19 = 1, 22 = 0, 23 = 0.
        let nl = parse(C17).unwrap();
        let outs = sim::eval_outputs(&nl, &[false; 5]);
        assert_eq!(outs, vec![false, false]);
        // Inputs all 1: 10 = 0, 11 = 0, 16 = 1, 19 = 1, 22 = 1, 23 = 0.
        let outs = sim::eval_outputs(&nl, &[true; 5]);
        assert_eq!(outs, vec![true, false]);
    }

    #[test]
    fn forward_references_resolve() {
        let text = "\
OUTPUT(y)
y = AND(a, b)
INPUT(a)
INPUT(b)
";
        let nl = parse(text).unwrap();
        assert_eq!(nl.num_inputs(), 2);
        assert_eq!(nl.num_gates(), 1);
    }

    #[test]
    fn roundtrip() {
        let nl = parse(C17).unwrap();
        let text = write(&nl).unwrap();
        let nl2 = parse(&text).unwrap();
        assert_eq!(nl2.num_gates(), nl.num_gates());
        for m in 0..32u32 {
            let ins: Vec<bool> = (0..5).map(|i| m >> i & 1 != 0).collect();
            assert_eq!(sim::eval_outputs(&nl, &ins), sim::eval_outputs(&nl2, &ins));
        }
    }

    #[test]
    fn dff_rejected() {
        let text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
        assert!(matches!(parse(text), Err(NetlistError::Unsupported(_))));
    }

    #[test]
    fn unknown_gate_rejected() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
        assert!(matches!(
            parse(text),
            Err(NetlistError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn unknown_output_rejected() {
        let text = "INPUT(a)\nOUTPUT(zz)\n";
        assert!(matches!(parse(text), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# hi\nINPUT(a) # trailing\nOUTPUT(y)\ny = BUFF(a)\n\n";
        let nl = parse(text).unwrap();
        assert_eq!(nl.num_gates(), 1);
    }
}
