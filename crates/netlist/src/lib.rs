//! Combinational Boolean network representation for the *atpg-easy* project,
//! a reproduction of "Why is ATPG Easy?" (Prasad, Chong, Keutzer, DAC 1999).
//!
//! The central type is [`Netlist`]: a directed acyclic network of logic
//! gates ([`Gate`], [`GateKind`]) connected by nets ([`NetId`]). Nets are
//! driven either by a primary input or by exactly one gate, and may fan out
//! to any number of gate inputs and/or primary outputs.
//!
//! On top of the core data structure this crate provides:
//!
//! - topological analysis: gate ordering, logic levels, transitive fan-in /
//!   fan-out cones and subcircuit extraction ([`topo`]) — the machinery
//!   behind the paper's `C_ψ^sub` and `C_ψ^fo` constructions;
//! - 64-way bit-parallel logic simulation ([`sim`]);
//! - technology decomposition to bounded-fan-in AND/OR/INV networks
//!   ([`decompose`]), the stand-in for SIS `tech_decomp` that the paper uses
//!   to pre-process every benchmark (Section 5.2.2);
//! - parsers and writers for the ISCAS85 `.bench` format and a BLIF subset
//!   ([`parser`]);
//! - a cleanup sweep — constant propagation, buffer collapsing, dead-logic
//!   removal ([`sweep`]).
//!
//! # Example
//!
//! ```
//! use atpg_easy_netlist::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), atpg_easy_netlist::NetlistError> {
//! // The example circuit of Figure 4(a) in the paper: f = OR(b, !c),
//! // g = OR(d, e) with an inverted output sense handled by gate choice,
//! // h = AND(a, f) ... here we just build a tiny AND-OR network.
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let f = nl.add_gate_named(GateKind::And, vec![a, b], "f")?;
//! nl.add_output(f);
//! nl.validate()?;
//! assert_eq!(nl.num_gates(), 1);
//! # Ok(())
//! # }
//! ```

pub mod decompose;
mod error;
mod gate;
mod id;
mod netlist;
pub mod parser;
pub mod sim;
pub mod stats;
pub mod sweep;
pub mod topo;

pub use error::NetlistError;
pub use gate::{splat_block, Gate, GateKind, PatternBlock, LANES, ZERO_BLOCK};
pub use id::{GateId, NetId};
pub use netlist::{Net, Netlist};
pub use stats::CircuitStats;
