//! Strongly-typed identifiers for nets and gates.

use std::fmt;

/// Identifier of a signal net within a [`Netlist`](crate::Netlist).
///
/// A net is driven either by a primary input or by exactly one gate output,
/// and is consumed by any number of gate inputs and/or primary outputs.
/// `NetId`s are dense indices assigned in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

/// Identifier of a gate within a [`Netlist`](crate::Netlist).
///
/// `GateId`s are dense indices assigned in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub(crate) u32);

impl NetId {
    /// Returns the dense index of this net.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NetId` from a dense index.
    ///
    /// Intended for sibling crates that build parallel per-net tables; the
    /// caller is responsible for the index being in range for the netlist it
    /// is used with.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

impl GateId {
    /// Returns the dense index of this gate.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `GateId` from a dense index.
    ///
    /// The caller is responsible for the index being in range for the
    /// netlist it is used with.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        GateId(index as u32)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_id_roundtrip() {
        let id = NetId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn gate_id_roundtrip() {
        let id = GateId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "g7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NetId::from_index(1) < NetId::from_index(2));
        assert!(GateId::from_index(0) < GateId::from_index(9));
    }
}
