//! Gate kinds and the gate record itself.

use std::fmt;

use crate::NetId;

/// Number of 64-bit lanes in a [`PatternBlock`]: 4 lanes = 256 patterns
/// per simulation pass.
pub const LANES: usize = 4;

/// A block of `64 * LANES` bit-parallel simulation patterns: lane `l`
/// bit `p` is pattern `64 * l + p`. A plain fixed-size array keeps the
/// layout transparent to the optimizer — lane-wise loops over
/// `[u64; LANES]` compile to SIMD on every target that has it.
pub type PatternBlock = [u64; LANES];

/// The all-zeros [`PatternBlock`] (every pattern reads logic 0).
pub const ZERO_BLOCK: PatternBlock = [0; LANES];

/// Broadcasts one 64-bit word into every lane of a [`PatternBlock`]
/// (useful for forcing a stuck-at value across all 256 patterns:
/// `splat_block(0)` for s-a-0, `splat_block(!0)` for s-a-1).
pub const fn splat_block(word: u64) -> PatternBlock {
    [word; LANES]
}

/// The logic function computed by a [`Gate`].
///
/// The paper maps every benchmark circuit to simple AND and OR gates,
/// allowing inversions (Section 2); the full set here lets parsers accept
/// the raw ISCAS85 / MCNC91 netlists before
/// [`decompose`](crate::decompose::decompose) reduces them to that form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Logical AND of all inputs. At least one input required.
    And,
    /// Logical OR of all inputs. At least one input required.
    Or,
    /// Negated AND.
    Nand,
    /// Negated OR.
    Nor,
    /// Exclusive OR (parity) of all inputs.
    Xor,
    /// Negated XOR.
    Xnor,
    /// Inverter; exactly one input.
    Not,
    /// Buffer; exactly one input.
    Buf,
    /// Constant 0; no inputs.
    Const0,
    /// Constant 1; no inputs.
    Const1,
}

impl GateKind {
    /// All gate kinds, in a fixed order. Useful for exhaustive tests.
    pub const ALL: [GateKind; 10] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
        GateKind::Const0,
        GateKind::Const1,
    ];

    /// Returns the valid range of fan-in counts for this kind as
    /// `(min, max)`, with `max = usize::MAX` meaning unbounded.
    pub fn fanin_bounds(self) -> (usize, usize) {
        match self {
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => (1, usize::MAX),
            GateKind::Xor | GateKind::Xnor => (1, usize::MAX),
            GateKind::Not | GateKind::Buf => (1, 1),
            GateKind::Const0 | GateKind::Const1 => (0, 0),
        }
    }

    /// Whether `n` is an admissible number of inputs for this kind.
    pub fn accepts_fanin(self, n: usize) -> bool {
        let (lo, hi) = self.fanin_bounds();
        n >= lo && n <= hi
    }

    /// Evaluates the gate function over 64-bit-parallel input words.
    ///
    /// Each bit position is an independent simulation pattern.
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        match self {
            GateKind::And => inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateKind::Nand => !inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateKind::Nor => !inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            GateKind::Not => !inputs[0],
            GateKind::Buf => inputs[0],
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
        }
    }

    /// Evaluates the gate function over [`PatternBlock`]s — 256
    /// bit-parallel patterns per call instead of [`Self::eval_words`]'s
    /// 64. Lane `l` bit `p` of every block belongs to pattern
    /// `64 * l + p`; lanes never interact, so the whole body is
    /// straight-line lane-wise bit logic the compiler autovectorizes
    /// (one 256-bit op per gate input on AVX2, two 128-bit ops on SSE2).
    pub fn eval_blocks(self, inputs: &[PatternBlock]) -> PatternBlock {
        #[inline]
        fn fold(inputs: &[PatternBlock], init: u64, f: impl Fn(u64, u64) -> u64) -> PatternBlock {
            let mut acc = [init; LANES];
            for w in inputs {
                for l in 0..LANES {
                    acc[l] = f(acc[l], w[l]);
                }
            }
            acc
        }
        #[inline]
        fn not(mut b: PatternBlock) -> PatternBlock {
            for l in &mut b {
                *l = !*l;
            }
            b
        }
        match self {
            GateKind::And => fold(inputs, !0, |a, w| a & w),
            GateKind::Or => fold(inputs, 0, |a, w| a | w),
            GateKind::Nand => not(fold(inputs, !0, |a, w| a & w)),
            GateKind::Nor => not(fold(inputs, 0, |a, w| a | w)),
            GateKind::Xor => fold(inputs, 0, |a, w| a ^ w),
            GateKind::Xnor => not(fold(inputs, 0, |a, w| a ^ w)),
            GateKind::Not => not(inputs[0]),
            GateKind::Buf => inputs[0],
            GateKind::Const0 => [0; LANES],
            GateKind::Const1 => [!0; LANES],
        }
    }

    /// Evaluates the gate function over plain booleans.
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
        self.eval_words(&words) & 1 != 0
    }

    /// Whether this gate kind is an inverting single-input or constant
    /// "bookkeeping" gate (not a logic-combining node).
    pub fn is_trivial(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::Buf | GateKind::Const0 | GateKind::Const1
        )
    }

    /// The same function with the output inverted, e.g. `And` ↔ `Nand`.
    pub fn inverted(self) -> GateKind {
        match self {
            GateKind::And => GateKind::Nand,
            GateKind::Nand => GateKind::And,
            GateKind::Or => GateKind::Nor,
            GateKind::Nor => GateKind::Or,
            GateKind::Xor => GateKind::Xnor,
            GateKind::Xnor => GateKind::Xor,
            GateKind::Not => GateKind::Buf,
            GateKind::Buf => GateKind::Not,
            GateKind::Const0 => GateKind::Const1,
            GateKind::Const1 => GateKind::Const0,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
        };
        f.write_str(s)
    }
}

/// A logic gate: a [`GateKind`], its input nets, and its single output net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The logic function.
    pub kind: GateKind,
    /// Input nets, in positional order.
    pub inputs: Vec<NetId>,
    /// The net driven by this gate.
    pub output: NetId,
}

impl Gate {
    /// Number of inputs (fan-in) of this gate.
    pub fn fanin(&self) -> usize {
        self.inputs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_or_eval() {
        assert!(GateKind::And.eval_bool(&[true, true]));
        assert!(!GateKind::And.eval_bool(&[true, false]));
        assert!(GateKind::Or.eval_bool(&[true, false]));
        assert!(!GateKind::Or.eval_bool(&[false, false]));
    }

    #[test]
    fn inverting_kinds_eval() {
        assert!(!GateKind::Nand.eval_bool(&[true, true]));
        assert!(GateKind::Nor.eval_bool(&[false, false]));
        assert!(GateKind::Xor.eval_bool(&[true, false]));
        assert!(!GateKind::Xor.eval_bool(&[true, true]));
        assert!(GateKind::Xnor.eval_bool(&[true, true]));
        assert!(!GateKind::Not.eval_bool(&[true]));
        assert!(GateKind::Buf.eval_bool(&[true]));
    }

    #[test]
    fn constants_eval() {
        assert!(!GateKind::Const0.eval_bool(&[]));
        assert!(GateKind::Const1.eval_bool(&[]));
    }

    #[test]
    fn word_parallel_matches_bool() {
        // Three-input XOR across all 8 minterms packed into one word.
        let a = 0b10101010u64;
        let b = 0b11001100u64;
        let c = 0b11110000u64;
        let out = GateKind::Xor.eval_words(&[a, b, c]);
        for m in 0..8 {
            let expect =
                GateKind::Xor.eval_bool(&[a >> m & 1 != 0, b >> m & 1 != 0, c >> m & 1 != 0]);
            assert_eq!(out >> m & 1 != 0, expect, "minterm {m}");
        }
    }

    #[test]
    fn inverted_is_involution() {
        for k in GateKind::ALL {
            assert_eq!(k.inverted().inverted(), k);
        }
    }

    #[test]
    fn inverted_complements_output() {
        let ins = [true, false, true];
        for k in GateKind::ALL {
            let n = match k {
                GateKind::Not | GateKind::Buf => 1,
                GateKind::Const0 | GateKind::Const1 => 0,
                _ => 3,
            };
            assert_eq!(k.eval_bool(&ins[..n]), !k.inverted().eval_bool(&ins[..n]));
        }
    }

    #[test]
    fn fanin_bounds_enforced() {
        assert!(GateKind::Not.accepts_fanin(1));
        assert!(!GateKind::Not.accepts_fanin(2));
        assert!(GateKind::And.accepts_fanin(5));
        assert!(!GateKind::And.accepts_fanin(0));
        assert!(GateKind::Const0.accepts_fanin(0));
        assert!(!GateKind::Const1.accepts_fanin(1));
    }
}
