//! The [`Netlist`] container itself.

use std::collections::HashMap;
use std::fmt;

use crate::{Gate, GateId, GateKind, NetId, NetlistError};

/// A signal net: a name plus the gate driving it, if any.
///
/// Nets without a driver are primary inputs (or, transiently while a parser
/// is running, forward references that must be resolved before
/// [`Netlist::validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Unique (per netlist) net name.
    pub name: String,
    /// The gate driving this net, `None` for primary inputs.
    pub driver: Option<GateId>,
}

/// A combinational Boolean network.
///
/// Gates are stored densely and identified by [`GateId`]; nets by [`NetId`].
/// The structure is append-only: analyses that need a transformed circuit
/// (decomposition, cone extraction) build a fresh `Netlist`.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    by_name: HashMap<String, NetId>,
    is_input: Vec<bool>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nets (including primary inputs).
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Primary input nets, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets, in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Access a net record.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids from a different netlist).
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Access a gate record.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterates over `(GateId, &Gate)` in creation order.
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> + '_ {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId::from_index(i), g))
    }

    /// Iterates over `(NetId, &Net)` in creation order.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> + '_ {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId::from_index(i), n))
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.nets.len()).map(NetId::from_index)
    }

    /// Iterates over all gate ids.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> {
        (0..self.gates.len()).map(GateId::from_index)
    }

    /// Looks a net up by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// Whether `net` is a primary input.
    pub fn is_input(&self, net: NetId) -> bool {
        self.is_input[net.index()]
    }

    /// Whether `net` is listed as a primary output.
    pub fn is_output(&self, net: NetId) -> bool {
        self.outputs.contains(&net)
    }

    /// Creates a fresh undriven, non-input net. Parsers use this for forward
    /// references; [`Self::validate`] rejects nets left undriven.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_net(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let id = NetId::from_index(self.nets.len());
        self.by_name.insert(name.clone(), id);
        self.nets.push(Net { name, driver: None });
        self.is_input.push(false);
        Ok(id)
    }

    /// Declares a primary input and returns its net.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken; use [`Self::try_add_input`] when
    /// parsing untrusted sources.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        self.try_add_input(name).expect("duplicate input name")
    }

    /// Declares a primary input, failing on duplicate names.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateName`] if the name is taken.
    pub fn try_add_input(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let id = self.add_net(name)?;
        self.is_input[id.index()] = true;
        self.inputs.push(id);
        Ok(id)
    }

    /// Marks an existing undriven net as a primary input.
    ///
    /// # Errors
    ///
    /// [`NetlistError::MultipleDrivers`] if the net already has a driver or
    /// is already an input.
    pub fn mark_input(&mut self, net: NetId) -> Result<(), NetlistError> {
        if self.nets[net.index()].driver.is_some() || self.is_input[net.index()] {
            return Err(NetlistError::MultipleDrivers(
                self.nets[net.index()].name.clone(),
            ));
        }
        self.is_input[net.index()] = true;
        self.inputs.push(net);
        Ok(())
    }

    /// Declares `net` a primary output. A net may be listed only once.
    pub fn add_output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
    }

    /// Adds a gate with an auto-generated output net name and returns the
    /// output net.
    ///
    /// # Errors
    ///
    /// [`NetlistError::BadFanin`] for an inadmissible input count.
    pub fn add_gate(&mut self, kind: GateKind, inputs: Vec<NetId>) -> Result<NetId, NetlistError> {
        let name = format!("_g{}", self.gates.len());
        self.add_gate_named(kind, inputs, name)
    }

    /// Adds a gate whose output net gets the given name.
    ///
    /// # Errors
    ///
    /// [`NetlistError::BadFanin`] for an inadmissible input count;
    /// [`NetlistError::DuplicateName`] if the output name is taken.
    pub fn add_gate_named(
        &mut self,
        kind: GateKind,
        inputs: Vec<NetId>,
        name: impl Into<String>,
    ) -> Result<NetId, NetlistError> {
        let out = self.add_net(name)?;
        self.drive_net(out, kind, inputs)?;
        Ok(out)
    }

    /// Attaches a new gate as the driver of an existing (undriven) net.
    /// Parsers use this to resolve forward references.
    ///
    /// # Errors
    ///
    /// [`NetlistError::MultipleDrivers`] if the net already has a driver or
    /// is an input; [`NetlistError::BadFanin`] for an inadmissible input
    /// count.
    pub fn drive_net(
        &mut self,
        output: NetId,
        kind: GateKind,
        inputs: Vec<NetId>,
    ) -> Result<GateId, NetlistError> {
        if !kind.accepts_fanin(inputs.len()) {
            return Err(NetlistError::BadFanin {
                kind: kind.to_string(),
                got: inputs.len(),
            });
        }
        if self.nets[output.index()].driver.is_some() || self.is_input[output.index()] {
            return Err(NetlistError::MultipleDrivers(
                self.nets[output.index()].name.clone(),
            ));
        }
        let gid = GateId::from_index(self.gates.len());
        self.gates.push(Gate {
            kind,
            inputs,
            output,
        });
        self.nets[output.index()].driver = Some(gid);
        Ok(gid)
    }

    /// Appends a gate with **no** arity, duplicate-driver, or acyclicity
    /// checks and returns its id.
    ///
    /// This exists for building deliberately malformed netlists — the
    /// adversarial inputs `atpg-easy-lint` exercises its passes against —
    /// and for trusted bulk loaders that validate separately. The net's
    /// recorded driver is only set when it had none, so a multiply-driven
    /// net keeps its first driver while the extra gate stays visible to
    /// analyses that scan the gate list.
    pub fn add_gate_unchecked(
        &mut self,
        kind: GateKind,
        inputs: Vec<NetId>,
        output: NetId,
    ) -> GateId {
        let gid = GateId::from_index(self.gates.len());
        self.gates.push(Gate {
            kind,
            inputs,
            output,
        });
        if self.nets[output.index()].driver.is_none() {
            self.nets[output.index()].driver = Some(gid);
        }
        gid
    }

    /// Per-net lists of the gates reading that net (fan-out lists).
    ///
    /// Primary-output consumption is not included; use
    /// [`Self::is_output`] for that.
    pub fn fanouts(&self) -> Vec<Vec<GateId>> {
        let mut out = vec![Vec::new(); self.nets.len()];
        for (gid, gate) in self.gates() {
            for &inp in &gate.inputs {
                out[inp.index()].push(gid);
            }
        }
        out
    }

    /// Largest gate fan-in in the network (`k_fi` in the paper); 0 if there
    /// are no gates.
    pub fn max_fanin(&self) -> usize {
        self.gates.iter().map(Gate::fanin).max().unwrap_or(0)
    }

    /// Largest net fan-out in the network (`k_fo` in the paper), counting
    /// gate sinks and primary-output consumption; 0 if empty.
    pub fn max_fanout(&self) -> usize {
        let mut counts = vec![0usize; self.nets.len()];
        for gate in &self.gates {
            for &inp in &gate.inputs {
                counts[inp.index()] += 1;
            }
        }
        for &o in &self.outputs {
            counts[o.index()] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// Structural sanity check: every net driven or an input, no
    /// combinational cycles, at least one output.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Undriven`] or [`NetlistError::Cycle`] describing the
    /// first offending net.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, net) in self.nets() {
            if net.driver.is_none() && !self.is_input(id) {
                return Err(NetlistError::Undriven(net.name.clone()));
            }
        }
        crate::topo::topo_order(self)?;
        Ok(())
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist {}: {} inputs, {} outputs, {} gates, {} nets",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.gates.len(),
            self.nets.len()
        )?;
        for (_, g) in self.gates() {
            let ins: Vec<&str> = g
                .inputs
                .iter()
                .map(|&n| self.net(n).name.as_str())
                .collect();
            writeln!(
                f,
                "  {} = {}({})",
                self.net(g.output).name,
                g.kind,
                ins.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let f = nl.add_gate_named(GateKind::And, vec![a, b], "f").unwrap();
        nl.add_output(f);
        nl
    }

    #[test]
    fn build_and_validate() {
        let nl = tiny();
        assert_eq!(nl.num_gates(), 1);
        assert_eq!(nl.num_nets(), 3);
        assert!(nl.validate().is_ok());
        assert!(nl.is_input(nl.find_net("a").unwrap()));
        assert!(nl.is_output(nl.find_net("f").unwrap()));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut nl = Netlist::new("d");
        nl.add_input("a");
        assert_eq!(
            nl.try_add_input("a"),
            Err(NetlistError::DuplicateName("a".into()))
        );
    }

    #[test]
    fn undriven_net_rejected() {
        let mut nl = Netlist::new("u");
        let x = nl.add_net("x").unwrap();
        nl.add_output(x);
        assert!(matches!(nl.validate(), Err(NetlistError::Undriven(_))));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let f = nl.add_gate_named(GateKind::Buf, vec![a], "f").unwrap();
        assert!(matches!(
            nl.drive_net(f, GateKind::Not, vec![a]),
            Err(NetlistError::MultipleDrivers(_))
        ));
    }

    #[test]
    fn bad_fanin_rejected() {
        let mut nl = Netlist::new("b");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        assert!(matches!(
            nl.add_gate(GateKind::Not, vec![a, b]),
            Err(NetlistError::BadFanin { .. })
        ));
    }

    #[test]
    fn fanout_lists() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let x = nl.add_gate_named(GateKind::Not, vec![a], "x").unwrap();
        let y = nl.add_gate_named(GateKind::Not, vec![a], "y").unwrap();
        let z = nl.add_gate_named(GateKind::And, vec![x, y], "z").unwrap();
        nl.add_output(z);
        let fo = nl.fanouts();
        assert_eq!(fo[a.index()].len(), 2);
        assert_eq!(fo[x.index()].len(), 1);
        assert_eq!(nl.max_fanout(), 2);
        assert_eq!(nl.max_fanin(), 2);
    }

    #[test]
    fn display_mentions_gates() {
        let s = tiny().to_string();
        assert!(s.contains("f = AND(a, b)"), "{s}");
    }

    #[test]
    fn output_listed_once() {
        let mut nl = tiny();
        let f = nl.find_net("f").unwrap();
        nl.add_output(f);
        assert_eq!(nl.num_outputs(), 1);
    }
}
