//! Netlist cleanup: constant propagation, buffer collapsing and
//! dead-logic removal.
//!
//! ATPG tools run a sweep like this before fault enumeration so that
//! trivially redundant faults (logic behind constants, unread nets) do
//! not pollute the fault list. The pass is semantics-preserving on the
//! primary outputs.

use crate::{GateKind, NetId, Netlist, NetlistError};

/// What [`sweep`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Gates whose output was proved constant and folded.
    pub constants_folded: usize,
    /// Buffer/inverter pairs collapsed into direct connections.
    pub buffers_collapsed: usize,
    /// Gates removed because nothing reads them.
    pub dead_gates_removed: usize,
}

/// Tri-state signal class used during propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Const(bool),
    /// Equal to another net (possibly inverted).
    Alias {
        root: NetId,
        inverted: bool,
    },
}

/// Sweeps a netlist: propagates constants through gates, collapses
/// buffers/double inverters, and drops unreachable logic. Returns the
/// cleaned netlist and a report. Net names of surviving nets are kept;
/// primary inputs always survive.
///
/// # Errors
///
/// Propagates structural errors from rebuilding (none occur for valid
/// inputs).
///
/// # Panics
///
/// Panics if the input netlist is cyclic.
pub fn sweep(nl: &Netlist) -> Result<(Netlist, SweepReport), NetlistError> {
    let order = crate::topo::topo_order(nl).expect("sweep requires an acyclic netlist");
    let mut report = SweepReport::default();

    // Pass 1: classify every net as constant, alias, or opaque.
    let mut class: Vec<Option<Class>> = vec![None; nl.num_nets()];
    let resolve = |class: &Vec<Option<Class>>, mut net: NetId| -> (NetId, bool) {
        let mut inv = false;
        loop {
            match class[net.index()] {
                Some(Class::Alias { root, inverted }) => {
                    inv ^= inverted;
                    net = root;
                }
                _ => return (net, inv),
            }
        }
    };
    // Per-gate rebuild plan for gates that survive with simplified inputs:
    // the kind plus each live input as (net, inverted?).
    type RebuildPlan = Option<(GateKind, Vec<(NetId, bool)>)>;
    let mut plan: Vec<RebuildPlan> = vec![None; nl.num_gates()];
    for &gid in &order {
        let gate = nl.gate(gid);
        // Resolve inputs through aliases; split into constants and live.
        let mut live: Vec<(NetId, bool)> = Vec::with_capacity(gate.inputs.len());
        let mut consts: Vec<bool> = Vec::new();
        for &inp in &gate.inputs {
            let (root, inv) = resolve(&class, inp);
            match class[root.index()] {
                Some(Class::Const(v)) => consts.push(v ^ inv),
                _ => live.push((root, inv)),
            }
        }
        let out = gate.output;
        let simplified = gate.inputs.len() != live.len();
        let folded: Option<Class> = match gate.kind {
            GateKind::Const0 => Some(Class::Const(false)),
            GateKind::Const1 => Some(Class::Const(true)),
            GateKind::Buf | GateKind::Not => {
                let invert = gate.kind == GateKind::Not;
                Some(match (consts.first(), live.first()) {
                    (Some(&v), _) => Class::Const(v ^ invert),
                    (None, Some(&(root, inv))) => Class::Alias {
                        root,
                        inverted: inv ^ invert,
                    },
                    (None, None) => unreachable!("single-input gates have one input"),
                })
            }
            GateKind::And | GateKind::Nand => {
                let invert = gate.kind == GateKind::Nand;
                if consts.contains(&false) {
                    Some(Class::Const(invert))
                } else if live.is_empty() {
                    Some(Class::Const(!invert))
                } else if live.len() == 1 && !invert && !live[0].1 {
                    Some(Class::Alias {
                        root: live[0].0,
                        inverted: false,
                    })
                } else {
                    plan[gid.index()] = Some((gate.kind, live));
                    None
                }
            }
            GateKind::Or | GateKind::Nor => {
                let invert = gate.kind == GateKind::Nor;
                if consts.contains(&true) {
                    Some(Class::Const(!invert))
                } else if live.is_empty() {
                    Some(Class::Const(invert))
                } else if live.len() == 1 && !invert && !live[0].1 {
                    Some(Class::Alias {
                        root: live[0].0,
                        inverted: false,
                    })
                } else {
                    plan[gid.index()] = Some((gate.kind, live));
                    None
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let mut parity = consts.iter().fold(false, |a, &c| a ^ c);
                if gate.kind == GateKind::Xnor {
                    parity = !parity;
                }
                if live.is_empty() {
                    Some(Class::Const(parity))
                } else if live.len() == 1 {
                    Some(Class::Alias {
                        root: live[0].0,
                        inverted: live[0].1 ^ parity,
                    })
                } else {
                    let kind = if parity {
                        GateKind::Xnor
                    } else {
                        GateKind::Xor
                    };
                    plan[gid.index()] = Some((kind, live));
                    None
                }
            }
        };
        if let Some(c) = folded {
            match c {
                Class::Const(_) if !gate.kind.is_trivial() => report.constants_folded += 1,
                Class::Alias { .. } if matches!(gate.kind, GateKind::Buf | GateKind::Not) => {
                    report.buffers_collapsed += 1
                }
                Class::Alias { .. } => report.constants_folded += 1,
                _ => {}
            }
            class[out.index()] = Some(c);
        } else if simplified {
            report.constants_folded += 1;
        }
    }

    // Pass 2: mark nets needed at the outputs (through aliases).
    let mut needed = vec![false; nl.num_nets()];
    let mut stack: Vec<NetId> = Vec::new();
    for &o in nl.outputs() {
        let (root, _) = resolve(&class, o);
        if !matches!(class[root.index()], Some(Class::Const(_))) {
            stack.push(root);
        }
    }
    while let Some(net) = stack.pop() {
        if needed[net.index()] {
            continue;
        }
        needed[net.index()] = true;
        if let Some(gid) = nl.net(net).driver {
            let deps: Vec<NetId> = match &plan[gid.index()] {
                Some((_, live)) => live.iter().map(|&(r, _)| r).collect(),
                None => nl.gate(gid).inputs.clone(),
            };
            for inp in deps {
                let (root, _) = resolve(&class, inp);
                if !needed[root.index()] && !matches!(class[root.index()], Some(Class::Const(_))) {
                    stack.push(root);
                }
            }
        }
    }

    // Pass 3: rebuild. Primary inputs always survive (the interface is
    // preserved even when an input became irrelevant).
    let mut out = Netlist::new(format!("{}_swept", nl.name()));
    let mut map: Vec<Option<NetId>> = vec![None; nl.num_nets()];
    for &pi in nl.inputs() {
        map[pi.index()] = Some(out.try_add_input(nl.net(pi).name.clone())?);
    }
    let mut const_nets: [Option<NetId>; 2] = [None, None];
    // One shared inverter per root net (keyed by the *output* netlist id).
    let mut inverters: std::collections::HashMap<NetId, NetId> = std::collections::HashMap::new();
    let mut fresh = 0usize;

    fn fresh_name(out: &Netlist, prefix: &str, fresh: &mut usize) -> String {
        loop {
            let cand = format!("{prefix}{fresh}");
            *fresh += 1;
            if out.find_net(&cand).is_none() {
                return cand;
            }
        }
    }

    // Materializes a constant net on demand.
    fn constant(
        out: &mut Netlist,
        const_nets: &mut [Option<NetId>; 2],
        fresh: &mut usize,
        v: bool,
    ) -> Result<NetId, NetlistError> {
        if let Some(n) = const_nets[usize::from(v)] {
            return Ok(n);
        }
        let kind = if v {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        let name = fresh_name(out, "_k", fresh);
        let n = out.add_gate_named(kind, vec![], name)?;
        const_nets[usize::from(v)] = Some(n);
        Ok(n)
    }

    for &gid in &order {
        let gate = nl.gate(gid);
        let o = gate.output;
        let (root, _) = resolve(&class, o);
        if root != o || matches!(class[o.index()], Some(Class::Const(_))) {
            continue; // folded away
        }
        if !needed[o.index()] {
            report.dead_gates_removed += 1;
            continue;
        }
        // Rebuild this gate from its plan (simplified inputs) or verbatim.
        let (kind, resolved_inputs): (GateKind, Vec<(NetId, bool)>) = match &plan[gid.index()] {
            Some((k, live)) => (*k, live.clone()),
            None => (
                gate.kind,
                gate.inputs.iter().map(|&i| resolve(&class, i)).collect(),
            ),
        };
        let mut new_inputs = Vec::with_capacity(resolved_inputs.len());
        for (r, inv) in resolved_inputs {
            let base = match class[r.index()] {
                Some(Class::Const(v)) => constant(&mut out, &mut const_nets, &mut fresh, v)?,
                _ => map[r.index()].expect("dependencies built first"),
            };
            if inv {
                let n = match inverters.get(&base) {
                    Some(&n) => n,
                    None => {
                        let name = fresh_name(&out, "_s", &mut fresh);
                        let n = out.add_gate_named(GateKind::Not, vec![base], name)?;
                        inverters.insert(base, n);
                        n
                    }
                };
                new_inputs.push(n);
            } else {
                new_inputs.push(base);
            }
        }
        map[o.index()] = Some(out.add_gate_named(kind, new_inputs, nl.net(o).name.clone())?);
    }

    // Outputs: resolve through aliases; constants materialize. Two source
    // outputs may resolve to the same net — a buffer keeps the interface
    // width intact.
    let mut used_outputs: std::collections::HashSet<NetId> = std::collections::HashSet::new();
    for &o in nl.outputs() {
        let (root, inv) = resolve(&class, o);
        let base = match class[root.index()] {
            Some(Class::Const(v)) => constant(&mut out, &mut const_nets, &mut fresh, v ^ inv)?,
            _ => {
                let b = map[root.index()].expect("needed nets were built");
                if inv {
                    match inverters.get(&b) {
                        Some(&n) => n,
                        None => {
                            let name = fresh_name(&out, "_s", &mut fresh);
                            let n = out.add_gate_named(GateKind::Not, vec![b], name)?;
                            inverters.insert(b, n);
                            n
                        }
                    }
                } else {
                    b
                }
            }
        };
        let distinct = if used_outputs.insert(base) {
            base
        } else {
            let name = fresh_name(&out, "_o", &mut fresh);
            let b = out.add_gate_named(GateKind::Buf, vec![base], name)?;
            used_outputs.insert(b);
            b
        };
        out.add_output(distinct);
    }
    out.validate()?;
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    fn equivalent(a: &Netlist, b: &Netlist) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        let n = a.num_inputs();
        assert!(n <= 10);
        for m in 0u32..(1 << n) {
            let ins: Vec<bool> = (0..n).map(|i| m >> i & 1 != 0).collect();
            assert_eq!(
                sim::eval_outputs(a, &ins),
                sim::eval_outputs(b, &ins),
                "minterm {m}"
            );
        }
    }

    #[test]
    fn constant_folds_through_and() {
        let mut nl = Netlist::new("k");
        let a = nl.add_input("a");
        let k0 = nl.add_gate_named(GateKind::Const0, vec![], "k0").unwrap();
        let y = nl.add_gate_named(GateKind::And, vec![a, k0], "y").unwrap();
        let z = nl.add_gate_named(GateKind::Or, vec![y, a], "z").unwrap();
        nl.add_output(z);
        let (swept, report) = sweep(&nl).unwrap();
        equivalent(&nl, &swept);
        assert!(report.constants_folded >= 1);
        // z = OR(0, a) = a: the whole circuit reduces to a buffer-ish form.
        assert!(swept.num_gates() <= 1, "{swept}");
    }

    #[test]
    fn double_inverter_collapses() {
        let mut nl = Netlist::new("bb");
        let a = nl.add_input("a");
        let n1 = nl.add_gate_named(GateKind::Not, vec![a], "n1").unwrap();
        let n2 = nl.add_gate_named(GateKind::Not, vec![n1], "n2").unwrap();
        let b = nl.add_input("b");
        let y = nl.add_gate_named(GateKind::And, vec![n2, b], "y").unwrap();
        nl.add_output(y);
        let (swept, report) = sweep(&nl).unwrap();
        equivalent(&nl, &swept);
        assert!(report.buffers_collapsed >= 2);
        assert_eq!(swept.num_gates(), 1, "only the AND survives: {swept}");
    }

    #[test]
    fn dead_logic_removed() {
        let mut nl = Netlist::new("dead");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let _dead = nl
            .add_gate_named(GateKind::Xor, vec![a, b], "dead")
            .unwrap();
        let y = nl.add_gate_named(GateKind::Or, vec![a, b], "y").unwrap();
        nl.add_output(y);
        let (swept, report) = sweep(&nl).unwrap();
        equivalent(&nl, &swept);
        assert_eq!(report.dead_gates_removed, 1);
        assert_eq!(swept.num_gates(), 1);
    }

    #[test]
    fn constant_output_materialized() {
        // y = OR(a, NOT a) = 1.
        let mut nl = Netlist::new("taut");
        let a = nl.add_input("a");
        let na = nl.add_gate_named(GateKind::Not, vec![a], "na").unwrap();
        let y = nl.add_gate_named(GateKind::Or, vec![a, na], "y").unwrap();
        nl.add_output(y);
        let (swept, _) = sweep(&nl).unwrap();
        // OR over {a, ¬a} is not folded by the class analysis (it is not a
        // constant *input*), so the sweep keeps the gate — but it must
        // still be equivalent.
        equivalent(&nl, &swept);
    }

    #[test]
    fn xor_with_constants_folds() {
        let mut nl = Netlist::new("xk");
        let k1 = nl.add_gate_named(GateKind::Const1, vec![], "k1").unwrap();
        let k0 = nl.add_gate_named(GateKind::Const0, vec![], "k0").unwrap();
        let y = nl.add_gate_named(GateKind::Xor, vec![k1, k0], "y").unwrap();
        nl.add_input("a");
        nl.add_output(y);
        let (swept, _) = sweep(&nl).unwrap();
        equivalent(&nl, &swept);
        // The output is the constant 1.
        assert!(swept.num_gates() <= 1);
    }

    #[test]
    fn idempotent_on_clean_circuits() {
        let mut nl = Netlist::new("clean");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate_named(GateKind::Nand, vec![a, b], "y").unwrap();
        nl.add_output(y);
        let (once, r1) = sweep(&nl).unwrap();
        assert_eq!(r1, SweepReport::default());
        let (twice, r2) = sweep(&once).unwrap();
        assert_eq!(r2, SweepReport::default());
        equivalent(&once, &twice);
    }

    #[test]
    fn random_circuits_preserved() {
        use crate::parser::bench;
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\nOUTPUT(w)\n\
                    t1 = NAND(a, b)\nt2 = BUFF(t1)\nt3 = NOT(t2)\nt4 = NOR(c, c)\n\
                    z = XOR(t3, t4)\nw = AND(t2, c)\n";
        let nl = bench::parse(text).unwrap();
        let (swept, _) = sweep(&nl).unwrap();
        equivalent(&nl, &swept);
        assert!(swept.num_gates() <= nl.num_gates());
    }
}
