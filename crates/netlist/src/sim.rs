//! Bit-parallel logic simulation.
//!
//! Each net carries a 64-bit word; bit `p` of every word belongs to
//! simulation pattern `p`, so one pass evaluates 64 input vectors at once.
//! This is the classic parallel-pattern technique ATPG tools (including
//! TEGUS) use for fault dropping.

use crate::{topo, NetId, Netlist};

/// A reusable simulator for one netlist.
///
/// Construction performs the topological sort once; each
/// [`Simulator::run`] is then a linear sweep.
#[derive(Debug, Clone)]
pub struct Simulator {
    order: Vec<crate::GateId>,
    num_nets: usize,
}

impl Simulator {
    /// Prepares a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is cyclic; call
    /// [`Netlist::validate`](crate::Netlist::validate) first.
    pub fn new(nl: &Netlist) -> Self {
        Simulator {
            order: topo::topo_order(nl).expect("simulation requires an acyclic netlist"),
            num_nets: nl.num_nets(),
        }
    }

    /// Evaluates all nets for 64 parallel patterns.
    ///
    /// `input_words[i]` supplies the word for `nl.inputs()[i]`. Returns one
    /// word per net, indexed by [`NetId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != nl.num_inputs()` or the netlist does
    /// not match the one the simulator was built for.
    pub fn run(&self, nl: &Netlist, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(input_words.len(), nl.num_inputs(), "one word per input");
        assert_eq!(nl.num_nets(), self.num_nets, "netlist/simulator mismatch");
        let mut values = vec![0u64; self.num_nets];
        for (i, &net) in nl.inputs().iter().enumerate() {
            values[net.index()] = input_words[i];
        }
        let mut in_buf: Vec<u64> = Vec::with_capacity(8);
        for &gid in &self.order {
            let gate = nl.gate(gid);
            in_buf.clear();
            in_buf.extend(gate.inputs.iter().map(|&n| values[n.index()]));
            values[gate.output.index()] = gate.kind.eval_words(&in_buf);
        }
        values
    }

    /// Like [`Self::run`] but forcing net `forced` to the constant word
    /// `forced_value` regardless of its driver — i.e. simulating a stuck-at
    /// fault (all-zeros word for s-a-0, all-ones for s-a-1).
    pub fn run_with_forced(
        &self,
        nl: &Netlist,
        input_words: &[u64],
        forced: NetId,
        forced_value: u64,
    ) -> Vec<u64> {
        assert_eq!(input_words.len(), nl.num_inputs(), "one word per input");
        let mut values = vec![0u64; self.num_nets];
        for (i, &net) in nl.inputs().iter().enumerate() {
            values[net.index()] = input_words[i];
        }
        values[forced.index()] = forced_value;
        let mut in_buf: Vec<u64> = Vec::with_capacity(8);
        for &gid in &self.order {
            let gate = nl.gate(gid);
            if gate.output == forced {
                continue; // the fault overrides the driver
            }
            in_buf.clear();
            in_buf.extend(gate.inputs.iter().map(|&n| values[n.index()]));
            values[gate.output.index()] = gate.kind.eval_words(&in_buf);
        }
        values
    }
}

/// Convenience single-pattern evaluation: returns the boolean value of every
/// net under the given input assignment.
///
/// # Panics
///
/// Panics if `inputs.len() != nl.num_inputs()` or the netlist is cyclic.
pub fn eval(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
    Simulator::new(nl)
        .run(nl, &words)
        .into_iter()
        .map(|w| w & 1 != 0)
        .collect()
}

/// Evaluates only the primary outputs for one input assignment.
///
/// # Panics
///
/// Same as [`eval`].
pub fn eval_outputs(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let all = eval(nl, inputs);
    nl.outputs().iter().map(|&o| all[o.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateKind, Netlist};

    fn xor2() -> Netlist {
        let mut nl = Netlist::new("xor2");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate_named(GateKind::Xor, vec![a, b], "y").unwrap();
        nl.add_output(y);
        nl
    }

    #[test]
    fn single_pattern_eval() {
        let nl = xor2();
        assert_eq!(eval_outputs(&nl, &[false, false]), vec![false]);
        assert_eq!(eval_outputs(&nl, &[true, false]), vec![true]);
        assert_eq!(eval_outputs(&nl, &[true, true]), vec![false]);
    }

    #[test]
    fn parallel_matches_serial() {
        let nl = xor2();
        let sim = Simulator::new(&nl);
        // Pack all four minterms into the low bits of the words.
        let a = 0b1010u64;
        let b = 0b1100u64;
        let vals = sim.run(&nl, &[a, b]);
        let y = nl.find_net("y").unwrap();
        assert_eq!(vals[y.index()] & 0xF, 0b0110);
    }

    #[test]
    fn forced_net_overrides_driver() {
        let nl = xor2();
        let sim = Simulator::new(&nl);
        let y = nl.find_net("y").unwrap();
        let vals = sim.run_with_forced(&nl, &[0, 0], y, !0);
        assert_eq!(vals[y.index()], !0, "stuck-at-1 on the output");
    }

    #[test]
    fn forced_internal_net_propagates() {
        // y = AND(a, b); force a=1 regardless of the supplied 0 word.
        let mut nl = Netlist::new("and2");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate_named(GateKind::And, vec![a, b], "y").unwrap();
        nl.add_output(y);
        let sim = Simulator::new(&nl);
        let vals = sim.run_with_forced(&nl, &[0, !0], a, !0);
        assert_eq!(vals[y.index()], !0);
    }

    #[test]
    #[should_panic(expected = "one word per input")]
    fn wrong_input_count_panics() {
        let nl = xor2();
        Simulator::new(&nl).run(&nl, &[0]);
    }
}
