//! Bit-parallel logic simulation.
//!
//! Each net carries a 64-bit word; bit `p` of every word belongs to
//! simulation pattern `p`, so one pass evaluates 64 input vectors at once.
//! This is the classic parallel-pattern technique ATPG tools (including
//! TEGUS) use for fault dropping.
//!
//! The block-wide entry points ([`Simulator::run_block_into`],
//! [`Simulator::resim_cone_forced_block`]) widen each net to a
//! [`PatternBlock`] of [`LANES`] lanes — 256 patterns per pass — in a
//! SIMD-friendly layout: lanes never interact, so every gate evaluates
//! as straight-line lane-wise bit logic the compiler vectorizes. The
//! `_into` variants additionally reuse caller-owned buffers, so a
//! campaign's fault-dropping hot loop performs no per-call allocation.

pub use crate::gate::{splat_block, PatternBlock, LANES, ZERO_BLOCK};
use crate::{topo, NetId, Netlist};

/// A reusable simulator for one netlist.
///
/// Construction performs the topological sort once; each
/// [`Simulator::run`] is then a linear sweep.
#[derive(Debug, Clone)]
pub struct Simulator {
    order: Vec<crate::GateId>,
    num_nets: usize,
}

impl Simulator {
    /// Prepares a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is cyclic; call
    /// [`Netlist::validate`](crate::Netlist::validate) first.
    pub fn new(nl: &Netlist) -> Self {
        Simulator {
            order: topo::topo_order(nl).expect("simulation requires an acyclic netlist"),
            num_nets: nl.num_nets(),
        }
    }

    /// Evaluates all nets for 64 parallel patterns.
    ///
    /// `input_words[i]` supplies the word for `nl.inputs()[i]`. Returns one
    /// word per net, indexed by [`NetId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != nl.num_inputs()` or the netlist does
    /// not match the one the simulator was built for.
    pub fn run(&self, nl: &Netlist, input_words: &[u64]) -> Vec<u64> {
        let mut values = Vec::new();
        self.run_into(nl, input_words, &mut values);
        values
    }

    /// Like [`Self::run`], but writing into a caller-owned buffer instead
    /// of allocating the result — the fault-dropping hot path calls this
    /// once per test batch, so reusing `values` across calls removes the
    /// per-call allocation entirely. The buffer is resized as needed; any
    /// previous contents are overwritten.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::run`].
    pub fn run_into(&self, nl: &Netlist, input_words: &[u64], values: &mut Vec<u64>) {
        assert_eq!(input_words.len(), nl.num_inputs(), "one word per input");
        assert_eq!(nl.num_nets(), self.num_nets, "netlist/simulator mismatch");
        values.clear();
        values.resize(self.num_nets, 0);
        for (i, &net) in nl.inputs().iter().enumerate() {
            values[net.index()] = input_words[i];
        }
        let mut in_buf: Vec<u64> = Vec::with_capacity(8);
        for &gid in &self.order {
            let gate = nl.gate(gid);
            in_buf.clear();
            in_buf.extend(gate.inputs.iter().map(|&n| values[n.index()]));
            values[gate.output.index()] = gate.kind.eval_words(&in_buf);
        }
    }

    /// Evaluates all nets for 256 parallel patterns (one [`PatternBlock`]
    /// per net). `input_blocks[i]` supplies the block for
    /// `nl.inputs()[i]`; lane `l` bit `p` of every block belongs to
    /// pattern `64 * l + p`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::run`].
    pub fn run_block(&self, nl: &Netlist, input_blocks: &[PatternBlock]) -> Vec<PatternBlock> {
        let mut values = Vec::new();
        self.run_block_into(nl, input_blocks, &mut values);
        values
    }

    /// [`Self::run_block`] into a caller-owned buffer (resized as needed,
    /// previous contents overwritten) — the 256-wide analogue of
    /// [`Self::run_into`]. One pass here costs one topological sweep for
    /// four times the patterns of a 64-wide pass; the per-gate dispatch
    /// and operand gather are paid once per block instead of once per
    /// word, and the lane-wise evaluation vectorizes.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::run`].
    pub fn run_block_into(
        &self,
        nl: &Netlist,
        input_blocks: &[PatternBlock],
        values: &mut Vec<PatternBlock>,
    ) {
        assert_eq!(input_blocks.len(), nl.num_inputs(), "one block per input");
        assert_eq!(nl.num_nets(), self.num_nets, "netlist/simulator mismatch");
        values.clear();
        values.resize(self.num_nets, ZERO_BLOCK);
        for (i, &net) in nl.inputs().iter().enumerate() {
            values[net.index()] = input_blocks[i];
        }
        let mut in_buf: Vec<PatternBlock> = Vec::with_capacity(8);
        for &gid in &self.order {
            let gate = nl.gate(gid);
            in_buf.clear();
            in_buf.extend(gate.inputs.iter().map(|&n| values[n.index()]));
            values[gate.output.index()] = gate.kind.eval_blocks(&in_buf);
        }
    }

    /// The topological gate order this simulator evaluates in.
    pub fn order(&self) -> &[crate::GateId] {
        &self.order
    }

    /// Like [`Self::run`] but forcing net `forced` to the constant word
    /// `forced_value` regardless of its driver — i.e. simulating a stuck-at
    /// fault (all-zeros word for s-a-0, all-ones for s-a-1).
    pub fn run_with_forced(
        &self,
        nl: &Netlist,
        input_words: &[u64],
        forced: NetId,
        forced_value: u64,
    ) -> Vec<u64> {
        assert_eq!(input_words.len(), nl.num_inputs(), "one word per input");
        let mut values = vec![0u64; self.num_nets];
        for (i, &net) in nl.inputs().iter().enumerate() {
            values[net.index()] = input_words[i];
        }
        values[forced.index()] = forced_value;
        let mut in_buf: Vec<u64> = Vec::with_capacity(8);
        for &gid in &self.order {
            let gate = nl.gate(gid);
            if gate.output == forced {
                continue; // the fault overrides the driver
            }
            in_buf.clear();
            in_buf.extend(gate.inputs.iter().map(|&n| values[n.index()]));
            values[gate.output.index()] = gate.kind.eval_words(&in_buf);
        }
        values
    }

    /// Event-driven faulty resimulation limited to the fan-out cone of the
    /// fault net.
    ///
    /// `good` holds the fault-free value of every net (from [`Self::run`]);
    /// `scratch` must be equal to `good` on entry. The net `forced` is set
    /// to `forced_value` and only the gates in `cone` — the topologically
    /// ordered fan-out cone from
    /// [`topo::fanout_cone_gates`](crate::topo::fanout_cone_gates) — are
    /// re-evaluated. This is sound because every net outside the cone is
    /// unreachable from the fault and therefore keeps its good value, which
    /// `scratch` already holds.
    ///
    /// Returns the detection word: bit `p` is set iff pattern `p` observes
    /// a difference on at least one primary output. `scratch` is restored
    /// to `good` before returning, so it can be reused across faults.
    ///
    /// # Panics
    ///
    /// Panics if `good` / `scratch` are not sized for this netlist.
    pub fn resim_cone_forced(
        &self,
        nl: &Netlist,
        good: &[u64],
        scratch: &mut [u64],
        forced: NetId,
        forced_value: u64,
        cone: &[crate::GateId],
    ) -> u64 {
        assert_eq!(good.len(), self.num_nets, "good values cover every net");
        assert_eq!(scratch.len(), self.num_nets, "scratch covers every net");
        scratch[forced.index()] = forced_value;
        let mut in_buf: Vec<u64> = Vec::with_capacity(8);
        for &gid in cone {
            let gate = nl.gate(gid);
            in_buf.clear();
            in_buf.extend(gate.inputs.iter().map(|&n| scratch[n.index()]));
            scratch[gate.output.index()] = gate.kind.eval_words(&in_buf);
        }
        let mut detect = 0u64;
        for &o in nl.outputs() {
            detect |= scratch[o.index()] ^ good[o.index()];
        }
        scratch[forced.index()] = good[forced.index()];
        for &gid in cone {
            let out = nl.gate(gid).output;
            scratch[out.index()] = good[out.index()];
        }
        detect
    }

    /// [`Self::resim_cone_forced`] over [`PatternBlock`]s: event-driven
    /// faulty resimulation of 256 patterns in one cone sweep. `good` and
    /// `scratch` hold one block per net (from [`Self::run_block_into`]),
    /// `scratch` must equal `good` on entry and is restored before
    /// returning. Returns the detection block: lane `l` bit `p` is set
    /// iff pattern `64 * l + p` observes a difference on some primary
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `good` / `scratch` are not sized for this netlist.
    pub fn resim_cone_forced_block(
        &self,
        nl: &Netlist,
        good: &[PatternBlock],
        scratch: &mut [PatternBlock],
        forced: NetId,
        forced_value: PatternBlock,
        cone: &[crate::GateId],
    ) -> PatternBlock {
        assert_eq!(good.len(), self.num_nets, "good values cover every net");
        assert_eq!(scratch.len(), self.num_nets, "scratch covers every net");
        scratch[forced.index()] = forced_value;
        let mut in_buf: Vec<PatternBlock> = Vec::with_capacity(8);
        for &gid in cone {
            let gate = nl.gate(gid);
            in_buf.clear();
            in_buf.extend(gate.inputs.iter().map(|&n| scratch[n.index()]));
            scratch[gate.output.index()] = gate.kind.eval_blocks(&in_buf);
        }
        let mut detect = ZERO_BLOCK;
        for &o in nl.outputs() {
            for l in 0..LANES {
                detect[l] |= scratch[o.index()][l] ^ good[o.index()][l];
            }
        }
        scratch[forced.index()] = good[forced.index()];
        for &gid in cone {
            let out = nl.gate(gid).output;
            scratch[out.index()] = good[out.index()];
        }
        detect
    }
}

/// Convenience single-pattern evaluation: returns the boolean value of every
/// net under the given input assignment.
///
/// # Panics
///
/// Panics if `inputs.len() != nl.num_inputs()` or the netlist is cyclic.
pub fn eval(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
    Simulator::new(nl)
        .run(nl, &words)
        .into_iter()
        .map(|w| w & 1 != 0)
        .collect()
}

/// Evaluates only the primary outputs for one input assignment.
///
/// # Panics
///
/// Same as [`eval`].
pub fn eval_outputs(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let all = eval(nl, inputs);
    nl.outputs().iter().map(|&o| all[o.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateKind, Netlist};

    fn xor2() -> Netlist {
        let mut nl = Netlist::new("xor2");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate_named(GateKind::Xor, vec![a, b], "y").unwrap();
        nl.add_output(y);
        nl
    }

    #[test]
    fn single_pattern_eval() {
        let nl = xor2();
        assert_eq!(eval_outputs(&nl, &[false, false]), vec![false]);
        assert_eq!(eval_outputs(&nl, &[true, false]), vec![true]);
        assert_eq!(eval_outputs(&nl, &[true, true]), vec![false]);
    }

    #[test]
    fn parallel_matches_serial() {
        let nl = xor2();
        let sim = Simulator::new(&nl);
        // Pack all four minterms into the low bits of the words.
        let a = 0b1010u64;
        let b = 0b1100u64;
        let vals = sim.run(&nl, &[a, b]);
        let y = nl.find_net("y").unwrap();
        assert_eq!(vals[y.index()] & 0xF, 0b0110);
    }

    #[test]
    fn forced_net_overrides_driver() {
        let nl = xor2();
        let sim = Simulator::new(&nl);
        let y = nl.find_net("y").unwrap();
        let vals = sim.run_with_forced(&nl, &[0, 0], y, !0);
        assert_eq!(vals[y.index()], !0, "stuck-at-1 on the output");
    }

    #[test]
    fn forced_internal_net_propagates() {
        // y = AND(a, b); force a=1 regardless of the supplied 0 word.
        let mut nl = Netlist::new("and2");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate_named(GateKind::And, vec![a, b], "y").unwrap();
        nl.add_output(y);
        let sim = Simulator::new(&nl);
        let vals = sim.run_with_forced(&nl, &[0, !0], a, !0);
        assert_eq!(vals[y.index()], !0);
    }

    #[test]
    #[should_panic(expected = "one word per input")]
    fn wrong_input_count_panics() {
        let nl = xor2();
        Simulator::new(&nl).run(&nl, &[0]);
    }

    #[test]
    fn cone_resim_matches_full_forced_resim() {
        // A two-output circuit so the cone is a strict subset of the gates:
        // y0 = AND(a, b); y1 = OR(b, c). A fault on the AND cannot touch y1.
        let mut nl = Netlist::new("two_cones");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let y0 = nl.add_gate_named(GateKind::And, vec![a, b], "y0").unwrap();
        let y1 = nl.add_gate_named(GateKind::Or, vec![b, c], "y1").unwrap();
        nl.add_output(y0);
        nl.add_output(y1);
        let sim = Simulator::new(&nl);
        let inputs = [0xF0F0u64, 0xCCCCu64, 0xAAAAu64];
        let good = sim.run(&nl, &inputs);
        let mut scratch = good.clone();
        for (net, stuck) in [(y0, 0u64), (y0, !0u64), (a, 0), (a, !0), (b, 0), (b, !0)] {
            let cone = crate::topo::fanout_cone_gates(&nl, sim.order(), net);
            let fast = sim.resim_cone_forced(&nl, &good, &mut scratch, net, stuck, &cone);
            let full = sim.run_with_forced(&nl, &inputs, net, stuck);
            let slow = nl
                .outputs()
                .iter()
                .fold(0u64, |m, &o| m | (full[o.index()] ^ good[o.index()]));
            assert_eq!(fast, slow, "cone resim must match whole-circuit resim");
            assert_eq!(scratch, good, "scratch is restored after each fault");
        }
        // Sanity: the fault on y0 has a two-gate circuit but a one-gate cone.
        assert!(crate::topo::fanout_cone_gates(&nl, sim.order(), y0).is_empty());
        assert_eq!(crate::topo::fanout_cone_gates(&nl, sim.order(), b).len(), 2);
    }

    #[test]
    fn run_into_reuses_buffer_and_matches_run() {
        let nl = xor2();
        let sim = Simulator::new(&nl);
        let mut buf = vec![0xDEADu64; 1]; // wrong size and stale contents
        sim.run_into(&nl, &[0b1010, 0b1100], &mut buf);
        assert_eq!(buf, sim.run(&nl, &[0b1010, 0b1100]));
        let ptr = buf.as_ptr();
        sim.run_into(&nl, &[0b0011, 0b0101], &mut buf);
        assert_eq!(ptr, buf.as_ptr(), "right-sized buffer is not reallocated");
        assert_eq!(buf, sim.run(&nl, &[0b0011, 0b0101]));
    }

    #[test]
    fn block_run_matches_four_lane_wise_word_runs() {
        let nl = xor2();
        let sim = Simulator::new(&nl);
        let a: PatternBlock = [0xF0F0, 0xAAAA, 0x1234, !0];
        let b: PatternBlock = [0xCCCC, 0x5555, 0x4321, 0];
        let blocks = sim.run_block(&nl, &[a, b]);
        for l in 0..LANES {
            let words = sim.run(&nl, &[a[l], b[l]]);
            for (net, &w) in words.iter().enumerate() {
                assert_eq!(blocks[net][l], w, "net {net} lane {l}");
            }
        }
    }

    #[test]
    fn block_cone_resim_matches_word_cone_resim_per_lane() {
        let mut nl = Netlist::new("two_cones");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let y0 = nl.add_gate_named(GateKind::And, vec![a, b], "y0").unwrap();
        let y1 = nl.add_gate_named(GateKind::Or, vec![b, c], "y1").unwrap();
        nl.add_output(y0);
        nl.add_output(y1);
        let sim = Simulator::new(&nl);
        let ins: Vec<PatternBlock> = (0..3u64)
            .map(|i| core::array::from_fn(|l| (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15 << l)))
            .collect();
        let good = sim.run_block(&nl, &ins);
        let mut scratch = good.clone();
        for (net, stuck) in [(y0, false), (b, true), (a, false), (c, true)] {
            let cone = crate::topo::fanout_cone_gates(&nl, sim.order(), net);
            let forced = splat_block(if stuck { !0 } else { 0 });
            let det = sim.resim_cone_forced_block(&nl, &good, &mut scratch, net, forced, &cone);
            assert_eq!(scratch, good, "scratch restored");
            for l in 0..LANES {
                let lane_ins: Vec<u64> = ins.iter().map(|b| b[l]).collect();
                let lane_good = sim.run(&nl, &lane_ins);
                let mut lane_scratch = lane_good.clone();
                let want = sim.resim_cone_forced(
                    &nl,
                    &lane_good,
                    &mut lane_scratch,
                    net,
                    if stuck { !0 } else { 0 },
                    &cone,
                );
                assert_eq!(det[l], want, "net {net:?} lane {l}");
            }
        }
    }
}
