//! Property test: draining a `Collector` *while* producers are still
//! pushing loses nothing and duplicates nothing — whatever the batch
//! sizes, flush cadence, and drain timing. Complements the
//! `loom_collector` model tests (which explore a tiny scenario
//! exhaustively) with randomized large scenarios on real threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use atpg_easy_obs::{Collector, LocalBuf};
use proptest::prelude::*;

/// One producer's plan: how many records it pushes and after how many
/// pushes it flushes (0 means drop-flush only).
#[derive(Debug, Clone)]
struct Plan {
    records: usize,
    flush_every: usize,
}

fn plans() -> impl Strategy<Value = Vec<Plan>> {
    proptest::collection::vec(
        (1usize..400, 0usize..20).prop_map(|(records, flush_every)| Plan {
            records,
            flush_every,
        }),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn drain_under_concurrent_push_is_lossless(plans in plans(), drains in 1usize..8) {
        let collector = Collector::new();
        let stop = AtomicBool::new(false);
        let mut harvested: Vec<u64> = Vec::new();
        thread::scope(|s| {
            for (w, plan) in plans.iter().enumerate() {
                let collector = &collector;
                s.spawn(move || {
                    let mut buf = LocalBuf::new(collector);
                    for i in 0..plan.records {
                        // Records are globally unique: worker index in the
                        // high bits, sequence number in the low bits.
                        buf.push(((w as u64) << 32) | i as u64);
                        if plan.flush_every > 0 && (i + 1) % plan.flush_every == 0 {
                            buf.flush();
                        }
                    }
                    // Drop-flush hands off the tail batch.
                });
            }
            // The owner drains concurrently with the pushes above —
            // `drains` times, spread over the producers' lifetime.
            let collector = &collector;
            let stop = &stop;
            let drainer = s.spawn(move || {
                let mut got = Vec::new();
                let mut rounds = 0usize;
                while !stop.load(Ordering::Acquire) || rounds < drains {
                    got.extend(collector.drain());
                    rounds += 1;
                    thread::yield_now();
                }
                got
            });
            // Scope joins the producers when this closure returns; signal
            // the drainer only after spawning everyone so it overlaps.
            stop.store(true, Ordering::Release);
            harvested = drainer.join().expect("drainer");
        });
        // Producers are joined; whatever the drainer missed is still queued.
        harvested.extend(collector.drain());

        let mut expected: Vec<u64> = plans
            .iter()
            .enumerate()
            .flat_map(|(w, p)| (0..p.records).map(move |i| ((w as u64) << 32) | i as u64))
            .collect();
        expected.sort_unstable();
        harvested.sort_unstable();
        prop_assert_eq!(harvested, expected);
    }
}
