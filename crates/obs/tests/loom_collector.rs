//! Model-checked exploration of the `Collector` Treiber stack: push/drain
//! reclamation under every interleaving — no record lost or duplicated,
//! no node leaked or freed twice. Compiled only under
//! `RUSTFLAGS="--cfg loom"`, where `atpg_easy_syncx` swaps the production
//! `AtomicPtr` for the vendored model checker's — so the tests explore
//! the *production* `Collector`, not a copy.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p atpg-easy-obs --test loom_collector --release
//! ```
#![cfg(loom)]

use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

use atpg_easy_obs::{Collector, LocalBuf};
use loom::sync::Arc;

/// Counts drops through a plain (non-modeled) counter; the counts are
/// only inspected at quiescent points, after the model joins its threads.
struct Tracked(std::sync::Arc<StdAtomicUsize>);

impl Drop for Tracked {
    fn drop(&mut self) {
        self.0.fetch_add(1, StdOrdering::SeqCst);
    }
}

/// Two producers racing their pushes against the owner's drains: every
/// record surfaces in exactly one drain — none lost to a CAS retry, none
/// duplicated by the swap.
#[test]
fn drain_under_concurrent_push_loses_nothing() {
    loom::model(|| {
        let c = Arc::new(Collector::new());
        let c1 = Arc::clone(&c);
        let t = loom::thread::spawn(move || {
            c1.push_batch(vec![1u32, 2]);
            c1.push_batch(vec![3]);
        });
        // Drain concurrently with the producer's pushes: detaches a
        // consistent prefix of the stack.
        let mut got = c.drain();
        t.join().expect("producer thread");
        got.extend(c.drain());
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3], "each record in exactly one drain");
    });
}

/// Reclamation: every node a schedule allocates is freed exactly once,
/// whether it was drained mid-push, drained after join, or still pending
/// when the collector itself is dropped.
#[test]
fn every_record_reclaimed_exactly_once() {
    loom::model(|| {
        let drops = std::sync::Arc::new(StdAtomicUsize::new(0));
        let created = 3usize;
        {
            let c = Arc::new(Collector::new());
            let c1 = Arc::clone(&c);
            let d = std::sync::Arc::clone(&drops);
            let t = loom::thread::spawn(move || {
                c1.push_batch(vec![Tracked(std::sync::Arc::clone(&d))]);
                c1.push_batch(vec![
                    Tracked(std::sync::Arc::clone(&d)),
                    Tracked(std::sync::Arc::clone(&d)),
                ]);
            });
            // A racing drain may reclaim a prefix early; whatever is left
            // must be reclaimed when the collector drops below.
            let early = c.drain();
            t.join().expect("producer thread");
            drop(early);
        }
        assert_eq!(
            drops.load(StdOrdering::SeqCst),
            created,
            "every Tracked dropped exactly once (no leak, no double free)"
        );
    });
}

/// `LocalBuf`'s drop-flush races a concurrent drain: the flushed batch
/// lands exactly once, and an explicit flush plus the drop-flush never
/// duplicate records.
#[test]
fn localbuf_drop_flush_races_drain() {
    loom::model(|| {
        let c = Arc::new(Collector::new());
        let c1 = Arc::clone(&c);
        let t = loom::thread::spawn(move || {
            let mut b = LocalBuf::new(&*c1);
            b.push(10u32);
            b.flush();
            b.push(20);
            // Drop flushes the second batch.
        });
        let mut got = c.drain();
        t.join().expect("producer thread");
        got.extend(c.drain());
        got.sort_unstable();
        assert_eq!(got, vec![10, 20]);
    });
}
