//! Trace sinks: stream [`InstanceTrace`] records to JSONL, to the
//! Figure-1 CSV schema, or into an in-process percentile summary.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::time::Duration;

use atpg_easy_syncx::{Arc, Mutex};

use crate::hist::LogHistogram;
use crate::trace::{CampaignMeta, InstanceTrace};

/// A consumer of trace records. Sinks are infallible on the record path
/// only for the in-memory summarizer; I/O sinks surface errors so
/// harnesses can abort instead of silently truncating traces.
pub trait TraceSink {
    /// Consumes one instance record.
    fn instance(&mut self, t: &InstanceTrace) -> io::Result<()>;

    /// Consumes one campaign gauge record.
    fn campaign(&mut self, m: &CampaignMeta) -> io::Result<()>;

    /// Flushes buffered output.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Writes one JSON object per line to any `io::Write`.
pub struct JsonlSink<W: io::Write> {
    writer: W,
    /// Lines written so far.
    pub lines: u64,
}

impl<W: io::Write> JsonlSink<W> {
    /// A sink writing to `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, lines: 0 }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: io::Write> TraceSink for JsonlSink<W> {
    fn instance(&mut self, t: &InstanceTrace) -> io::Result<()> {
        self.lines += 1;
        writeln!(self.writer, "{}", t.to_jsonl())
    }

    fn campaign(&mut self, m: &CampaignMeta) -> io::Result<()> {
        self.lines += 1;
        writeln!(self.writer, "{}", m.to_jsonl())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Writes instance records in the `results/fig1_all.csv` schema
/// (`circuit,fault,vars,clauses,time_us,decisions,propagations,conflicts,
/// outcome`), matching `core::report::figure1_csv` byte-for-byte so
/// traces and in-process campaigns feed the same plotting scripts.
/// Campaign gauge records have no CSV row and are ignored.
pub struct CsvSink<W: io::Write> {
    writer: W,
    header_written: bool,
}

impl<W: io::Write> CsvSink<W> {
    /// A sink writing to `writer`; the header goes out with the first
    /// row.
    pub fn new(writer: W) -> Self {
        CsvSink {
            writer,
            header_written: false,
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: io::Write> TraceSink for CsvSink<W> {
    fn instance(&mut self, t: &InstanceTrace) -> io::Result<()> {
        if !self.header_written {
            writeln!(
                self.writer,
                "circuit,fault,vars,clauses,time_us,decisions,propagations,conflicts,outcome"
            )?;
            self.header_written = true;
        }
        writeln!(
            self.writer,
            "{},{},{},{},{:.3},{},{},{},{}",
            t.circuit,
            t.fault,
            t.vars,
            t.clauses,
            t.wall_ns as f64 / 1e3,
            t.counters.decisions,
            t.counters.propagations,
            t.counters.conflicts,
            t.outcome
        )
    }

    fn campaign(&mut self, _m: &CampaignMeta) -> io::Result<()> {
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// A cloneable, thread-safe handle over any sink: every clone appends to
/// the same underlying sink, record-atomically (one mutex acquisition
/// per record, so JSONL lines from concurrent producers interleave but
/// never tear). The serving layer hands one clone to each request so
/// per-request telemetry from many connections lands in one artifact.
pub struct SharedSink {
    inner: Arc<Mutex<dyn TraceSink + Send>>,
}

impl SharedSink {
    /// Wraps `sink` for shared multi-producer use.
    pub fn new(sink: impl TraceSink + Send + 'static) -> Self {
        SharedSink {
            inner: Arc::new(Mutex::new(sink)),
        }
    }
}

impl Clone for SharedSink {
    fn clone(&self) -> Self {
        SharedSink {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSink").finish_non_exhaustive()
    }
}

impl TraceSink for SharedSink {
    fn instance(&mut self, t: &InstanceTrace) -> io::Result<()> {
        self.inner.lock().expect("sink mutex").instance(t)
    }

    fn campaign(&mut self, m: &CampaignMeta) -> io::Result<()> {
        self.inner.lock().expect("sink mutex").campaign(m)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.inner.lock().expect("sink mutex").finish()
    }
}

/// In-process summarizer: per-outcome and per-circuit instance counts
/// plus a log-scale wall-time histogram — everything needed for the
/// paper's headline claim ("over 90% solved in under 1/100th of a
/// second") straight from a trace stream.
#[derive(Clone, Debug, Default)]
pub struct SummarySink {
    /// The accumulated summary; read it after the stream ends.
    pub summary: TraceSummary,
}

/// The aggregate a [`SummarySink`] builds.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Instance records seen.
    pub instances: u64,
    /// Instance count per outcome label.
    pub by_outcome: BTreeMap<String, u64>,
    /// Instance count per circuit.
    pub by_circuit: BTreeMap<String, u64>,
    /// Campaign gauge records seen.
    pub campaigns: u64,
    /// Sum of `committed_sat` across campaign records.
    pub committed_sat: u64,
    /// Sum of `committed_unsat` across campaign records.
    pub committed_unsat: u64,
    /// Sum of `wasted_solves` across campaign records.
    pub wasted_solves: u64,
    /// Wall-time distribution in nanoseconds.
    pub wall: LogHistogram,
    /// Decision-count distribution (machine-independent effort).
    pub decisions: LogHistogram,
}

impl TraceSummary {
    /// Fraction of instances with wall time at or under `threshold`
    /// (bucket-conservative, see [`LogHistogram::fraction_le`]).
    pub fn fast_fraction(&self, threshold: Duration) -> f64 {
        self.wall
            .fraction_le(threshold.as_nanos().min(u64::MAX as u128) as u64)
    }

    /// Renders the summary as a small fixed-width report.
    pub fn render(&self, fast_threshold: Duration) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} instances across {} circuits ({} campaign records)",
            self.instances,
            self.by_circuit.len(),
            self.campaigns
        );
        for (outcome, n) in &self.by_outcome {
            let _ = writeln!(s, "  {outcome:<8} {n}");
        }
        let _ = writeln!(
            s,
            "wall: min {:?} p50 {:?} p90 {:?} p99 {:?} max {:?}",
            Duration::from_nanos(self.wall.min()),
            Duration::from_nanos(self.wall.percentile(0.50)),
            Duration::from_nanos(self.wall.percentile(0.90)),
            Duration::from_nanos(self.wall.percentile(0.99)),
            Duration::from_nanos(self.wall.max()),
        );
        let _ = writeln!(
            s,
            "{:.1}% solved within {:?}; committed SAT {} / UNSAT {}; wasted solves {}",
            100.0 * self.fast_fraction(fast_threshold),
            fast_threshold,
            self.committed_sat,
            self.committed_unsat,
            self.wasted_solves
        );
        s
    }
}

impl SummarySink {
    /// An empty summarizer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for SummarySink {
    fn instance(&mut self, t: &InstanceTrace) -> io::Result<()> {
        let s = &mut self.summary;
        s.instances += 1;
        *s.by_outcome.entry(t.outcome.clone()).or_insert(0) += 1;
        *s.by_circuit.entry(t.circuit.clone()).or_insert(0) += 1;
        s.wall.record(t.wall_ns);
        s.decisions.record(t.counters.decisions);
        Ok(())
    }

    fn campaign(&mut self, m: &CampaignMeta) -> io::Result<()> {
        let s = &mut self.summary;
        s.campaigns += 1;
        s.committed_sat += m.committed_sat;
        s.committed_unsat += m.committed_unsat;
        s.wasted_solves += m.wasted_solves;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Counters;
    use crate::trace::{parse_jsonl, TraceLine};

    fn trace(circuit: &str, seq: u64, wall_ns: u64, outcome: &str) -> InstanceTrace {
        InstanceTrace {
            seq,
            circuit: circuit.into(),
            fault: format!("n{seq}/s-a-0"),
            vars: 10 + seq,
            clauses: 20 + seq,
            sub_size: 8,
            outcome: outcome.into(),
            wall_ns,
            worker: 0,
            proof_bytes: 0,
            counters: Counters {
                decisions: 3 + seq,
                propagations: 9,
                conflicts: 1,
                ..Counters::default()
            },
        }
    }

    fn meta() -> CampaignMeta {
        CampaignMeta {
            circuit: "c17".into(),
            threads: 2,
            commit_window: 1,
            queue_depth: 22,
            committed_sat: 2,
            committed_unsat: 1,
            dropped: 19,
            wasted_solves: 1,
            static_pruned: 0,
            cutwidth_estimate: Some(4),
        }
    }

    #[test]
    fn jsonl_sink_output_parses_back() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.campaign(&meta()).unwrap();
        sink.instance(&trace("c17", 0, 1000, "SAT")).unwrap();
        sink.instance(&trace("c17", 1, 2000, "UNSAT")).unwrap();
        sink.finish().unwrap();
        assert_eq!(sink.lines, 3);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines = parse_jsonl(&text).unwrap();
        assert_eq!(lines.len(), 3);
        match &lines[1] {
            TraceLine::Instance(t) => assert_eq!(t.seq, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn csv_sink_matches_fig1_schema() {
        let mut sink = CsvSink::new(Vec::new());
        sink.campaign(&meta()).unwrap(); // no row
        sink.instance(&trace("c17", 0, 42_000, "SAT")).unwrap();
        sink.finish().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "circuit,fault,vars,clauses,time_us,decisions,propagations,conflicts,outcome"
        );
        assert_eq!(lines.next().unwrap(), "c17,n0/s-a-0,10,20,42.000,3,9,1,SAT");
        assert!(lines.next().is_none());
    }

    #[test]
    fn summary_sink_aggregates() {
        let mut sink = SummarySink::new();
        for i in 0..90 {
            sink.instance(&trace("c17", i, 1_000_000, "SAT")).unwrap();
        }
        for i in 0..10 {
            sink.instance(&trace("b9", 90 + i, 1_000_000_000, "ABORT"))
                .unwrap();
        }
        sink.campaign(&meta()).unwrap();
        let s = &sink.summary;
        assert_eq!(s.instances, 100);
        assert_eq!(s.by_outcome["SAT"], 90);
        assert_eq!(s.by_outcome["ABORT"], 10);
        assert_eq!(s.by_circuit.len(), 2);
        assert_eq!(s.campaigns, 1);
        assert_eq!(s.committed_sat, 2);
        assert_eq!(s.committed_unsat, 1);
        let fast = s.fast_fraction(Duration::from_millis(10));
        assert!((fast - 0.9).abs() < 1e-9, "{fast}");
        let report = s.render(Duration::from_millis(10));
        assert!(report.contains("100 instances"), "{report}");
        assert!(report.contains("90.0% solved"), "{report}");
    }
}
