//! Lock-free hand-off of per-worker trace buffers.
//!
//! Parallel campaign workers record traces into a plain worker-owned
//! `Vec` (no synchronization on the hot path) wrapped in [`LocalBuf`];
//! when the buffer is flushed — at worker exit via `Drop`, or explicitly
//! — the whole `Vec` is pushed onto a shared [`Collector`] with a single
//! compare-and-swap. The collector is a Treiber stack of `Vec`s, so the
//! only cross-thread traffic is one CAS per worker per flush, never per
//! event.

use std::ptr;

use atpg_easy_syncx::atomic::{AtomicPtr, Ordering};

struct Node<T> {
    batch: Vec<T>,
    next: *mut Node<T>,
}

/// A lock-free multi-producer collector of `Vec<T>` batches.
///
/// Producers call [`Collector::push_batch`]; the owner drains with
/// [`Collector::drain`] after all producers are done (typically after a
/// `thread::scope` joins its workers). [`Collector::drain`] is also safe
/// *concurrently* with in-flight pushes — the atomic swap detaches a
/// consistent prefix of the stack — which the `loom_collector` model
/// tests and the drain-under-push proptest both exercise.
pub struct Collector<T> {
    head: AtomicPtr<Node<T>>,
}

// SAFETY: sending a `Collector<T>` moves ownership of every linked
// `Node<T>` (heap allocations reachable only through `head`) to the
// receiving thread; the batches inside cross threads with it, hence the
// `T: Send` bound. No thread-affine state is involved.
unsafe impl<T: Send> Send for Collector<T> {}
// SAFETY: shared access is a lock-free hand-off protocol: producers only
// link fully-initialized nodes with a release CAS, and the consumer only
// dereferences nodes after an acquire swap has unlinked the whole chain,
// giving it exclusive ownership. Each node is therefore touched by at
// most one thread at a time, and batch payloads (`T: Send`) move across
// exactly once.
unsafe impl<T: Send> Sync for Collector<T> {}

impl<T> Default for Collector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Collector<T> {
    /// An empty collector.
    pub fn new() -> Self {
        Collector {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Pushes one batch; lock-free (a CAS retry loop, no blocking).
    /// Empty batches are dropped without touching the stack.
    pub fn push_batch(&self, batch: Vec<T>) {
        if batch.is_empty() {
            return;
        }
        let node = Box::into_raw(Box::new(Node {
            batch,
            next: ptr::null_mut(),
        }));
        // ORDERING: Relaxed suffices for the initial read — the value only
        // seeds the CAS `current` operand and the speculative `next` link,
        // both of which the CAS itself re-validates; no memory is
        // dereferenced based on this load.
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` was just boxed above and, until the CAS below
            // succeeds, is exclusively owned by this thread — writing its
            // `next` field cannot race.
            unsafe { (*node).next = head };
            // ORDERING: Release on success publishes the node's `batch`
            // and `next` writes to whichever thread later acquires the
            // head (the draining swap); Relaxed on failure is fine because
            // a failed CAS publishes nothing and the retry re-reads.
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Detaches every pushed batch and concatenates them. Batches appear
    /// in reverse push order (stack order); callers that need a global
    /// order sort by a field of `T`.
    pub fn drain(&self) -> Vec<T> {
        // ORDERING: Acquire pairs with the Release CAS in `push_batch`:
        // it makes every unlinked node's `batch`/`next` writes visible
        // before they are dereferenced below.
        let mut node = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        let mut out = Vec::new();
        while !node.is_null() {
            // SAFETY: the swap above unlinked the whole chain atomically,
            // so no other thread can reach these nodes; each is consumed
            // exactly once (`node` advances past it), so the Box round-trip
            // neither double-frees nor leaks.
            let boxed = unsafe { Box::from_raw(node) };
            out.extend(boxed.batch);
            node = boxed.next;
        }
        out
    }
}

impl<T> Drop for Collector<T> {
    fn drop(&mut self) {
        self.drain();
    }
}

/// A worker-local trace buffer that flushes to a [`Collector`] when
/// dropped (or on [`LocalBuf::flush`]). Pushing is a plain `Vec::push`.
pub struct LocalBuf<'a, T> {
    collector: &'a Collector<T>,
    buf: Vec<T>,
}

impl<'a, T> LocalBuf<'a, T> {
    /// A new empty buffer feeding `collector`.
    pub fn new(collector: &'a Collector<T>) -> Self {
        LocalBuf {
            collector,
            buf: Vec::new(),
        }
    }

    /// Appends one record locally; no synchronization.
    pub fn push(&mut self, value: T) {
        self.buf.push(value);
    }

    /// Number of records buffered locally and not yet handed off.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the local buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Hands the current batch to the collector immediately.
    pub fn flush(&mut self) {
        self.collector.push_batch(std::mem::take(&mut self.buf));
    }
}

impl<T> Drop for LocalBuf<'_, T> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn single_thread_round_trip() {
        let c = Collector::new();
        {
            let mut b = LocalBuf::new(&c);
            b.push(1u32);
            b.push(2);
            assert_eq!(b.len(), 2);
        }
        let mut got = c.drain();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(c.drain().is_empty());
    }

    #[test]
    fn explicit_flush_then_more_pushes() {
        let c = Collector::new();
        let mut b = LocalBuf::new(&c);
        b.push(10u32);
        b.flush();
        assert!(b.is_empty());
        b.push(20);
        drop(b);
        let mut got = c.drain();
        got.sort_unstable();
        assert_eq!(got, vec![10, 20]);
    }

    #[test]
    fn empty_batches_are_dropped() {
        let c: Collector<u8> = Collector::new();
        c.push_batch(Vec::new());
        {
            let _b = LocalBuf::new(&c);
        }
        assert!(c.drain().is_empty());
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        const WORKERS: usize = 8;
        const PER_WORKER: usize = 1000;
        let c = Collector::new();
        thread::scope(|s| {
            for w in 0..WORKERS {
                let c = &c;
                s.spawn(move || {
                    let mut b = LocalBuf::new(c);
                    for i in 0..PER_WORKER {
                        b.push((w * PER_WORKER + i) as u64);
                        if i % 97 == 0 {
                            b.flush();
                        }
                    }
                });
            }
        });
        let mut got = c.drain();
        got.sort_unstable();
        let want: Vec<u64> = (0..(WORKERS * PER_WORKER) as u64).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn dropping_collector_frees_pending_batches() {
        let c = Collector::new();
        c.push_batch(vec![String::from("leak-check")]);
        drop(c);
    }
}
