//! A log₂-bucketed histogram for wall-time distributions.
//!
//! Figure-1 populations span five orders of magnitude (microseconds to
//! seconds), so percentiles over fixed-width buckets are useless; one
//! bucket per power of two of nanoseconds keeps relative error under 2×
//! at any scale with 64 counters of constant memory.

/// Histogram over `u64` samples with one bucket per power of two.
///
/// Bucket `b` holds samples `v` with `floor(log2(v)) == b` (bucket 0 also
/// holds `v == 0`). Percentile queries return the *upper bound* of the
/// bucket containing the requested rank — a conservative estimate, never
/// an underestimate by more than the bucket width.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`q` in `[0, 1]`): the top of
    /// the bucket holding the sample of that rank, clamped to the
    /// observed maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let top = match b {
                    0 => 1,
                    64 => u64::MAX,
                    _ => 1u64 << b,
                };
                return top.min(self.max).max(self.min_in_bucket_floor(b));
            }
        }
        self.max
    }

    fn min_in_bucket_floor(&self, b: usize) -> u64 {
        // Lower bound of bucket b, so percentile() of a single-bucket
        // histogram is at least the bucket's floor.
        if b <= 1 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Fraction of samples `<= threshold` as bounded by bucket edges:
    /// counts every bucket whose *upper* edge is `<= threshold`, plus the
    /// whole bucket containing `threshold` (conservative towards
    /// over-counting "fast" samples by at most one bucket width).
    pub fn fraction_le(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 1.0;
        }
        let b = Self::bucket(threshold);
        let fast: u64 = self.buckets[..=b].iter().sum();
        fast as f64 / self.count as f64
    }

    /// Non-empty buckets as `(lower_bound, upper_bound, count)` rows, for
    /// rendering.
    pub fn rows(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| {
                let lo = if b <= 1 { 0 } else { 1u64 << (b - 1) };
                let hi = match b {
                    0 => 1,
                    64 => u64::MAX,
                    _ => 1u64 << b,
                };
                (lo, hi, n)
            })
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_benign() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction_le(10), 1.0);
        assert!(h.rows().is_empty());
    }

    #[test]
    fn basic_stats() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 203.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_is_a_bucketed_upper_bound() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(100); // bucket [64, 128)
        }
        h.record(1_000_000);
        let p50 = h.percentile(0.50);
        assert!((64..=128).contains(&p50), "{p50}");
        let p99 = h.percentile(0.99);
        assert!((64..=128).contains(&p99), "{p99}");
        let p100 = h.percentile(1.0);
        assert!(p100 >= 1_000_000 / 2 && p100 <= 1_000_000, "{p100}");
    }

    #[test]
    fn fraction_le_counts_fast_buckets() {
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.record(1_000); // ~2^10
        }
        for _ in 0..10 {
            h.record(1 << 30);
        }
        let f = h.fraction_le(10_000_000);
        assert!((f - 0.9).abs() < 1e-9, "{f}");
        assert_eq!(h.fraction_le(u64::MAX), 1.0);
    }

    #[test]
    fn rows_cover_all_samples_and_bound_them() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 3, 700, 700, 1 << 40] {
            h.record(v);
        }
        let rows = h.rows();
        let total: u64 = rows.iter().map(|r| r.2).sum();
        assert_eq!(total, h.count());
        for (lo, hi, _) in rows {
            assert!(lo < hi);
        }
    }

    #[test]
    fn extreme_samples_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(1.0), u64::MAX);
        let rows = h.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].1, u64::MAX);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let samples_a = [5u64, 9, 1 << 20];
        let samples_b = [0u64, 77, 3];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in samples_a {
            a.record(v);
            both.record(v);
        }
        for v in samples_b {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.percentile(0.5), both.percentile(0.5));
    }
}
