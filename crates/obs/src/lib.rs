//! Solver telemetry for the *atpg-easy* workspace.
//!
//! The paper's core empirical artifact (Figure 1) is a *per-SAT-instance*
//! scatter of solve time versus instance size over thousands of ATPG
//! instances. Producing it faithfully — and correlating it with cut-width
//! — needs a uniform event stream from every solver, at zero cost when
//! nobody is listening. This crate is that layer:
//!
//! - [`Probe`]: a trait of typed solver events (decision, backtrack,
//!   cache hit/miss, learned clause, deadline check, instance begin/end).
//!   Every method has a no-op default; the zero-sized [`NoProbe`]
//!   monomorphizes every call site away, so an un-probed solve compiles
//!   to exactly the code it would be without this crate.
//! - [`CountingProbe`]: aggregates the stream into [`Counters`], the
//!   probe-derived per-instance summary reported by campaign engines.
//! - [`RecordingProbe`]: captures the raw [`Event`] stream (bounded) for
//!   tests and debugging.
//! - [`Collector`] + [`LocalBuf`]: thread-local trace buffers with a
//!   lock-free (Treiber-stack) hand-off, so parallel campaign workers
//!   record without contention.
//! - [`InstanceTrace`] / [`CampaignMeta`]: one JSONL line per SAT
//!   instance (plus one gauge line per campaign), with a parser for the
//!   same schema so traces round-trip.
//! - Sinks ([`JsonlSink`], [`CsvSink`], [`SummarySink`]): stream traces
//!   to JSONL, to the Figure-1 CSV schema, or into an in-process
//!   log-scale histogram/percentile summary ([`TraceSummary`]).
//!
//! No dependencies; JSON is hand-rolled like the rest of the workspace's
//! report output.

#![warn(clippy::unwrap_used)]

mod buffer;
mod hist;
mod probe;
mod sink;
mod trace;

pub use buffer::{Collector, LocalBuf};
pub use hist::LogHistogram;
pub use probe::{
    Counters, CountingProbe, Event, NoProbe, Probe, ProbeOutcome, RecordingProbe, Tee,
};
pub use sink::{CsvSink, JsonlSink, SharedSink, SummarySink, TraceSink, TraceSummary};
pub use trace::{parse_jsonl, parse_jsonl_line, CampaignMeta, InstanceTrace, TraceLine};
