//! The JSONL trace schema: one line per SAT instance, plus one gauge
//! line per campaign, with a parser so traces round-trip.
//!
//! No serde in this workspace — lines are flat objects of strings and
//! non-negative integers, hand-encoded like `core::report::scaling_json`
//! and parsed with a small recursive-descent scanner.

use std::fmt::Write as _;

use crate::probe::Counters;

/// One solved SAT instance, as recorded by a campaign engine.
///
/// `seq` is the fault's position in the campaign's deterministic commit
/// order, so traces from different thread counts can be compared after a
/// sort. `wall_ns` and `worker` are machine- and schedule-dependent and
/// are excluded from [`InstanceTrace::canonical`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceTrace {
    /// Commit-order index of the fault within its campaign.
    pub seq: u64,
    /// Source circuit name.
    pub circuit: String,
    /// Fault description (e.g. `n3/s-a-0`).
    pub fault: String,
    /// SAT variables of the instance.
    pub vars: u64,
    /// SAT clauses of the instance.
    pub clauses: u64,
    /// Fault-cone subcircuit size in nets.
    pub sub_size: u64,
    /// `"SAT"`, `"UNSAT"` or `"ABORT"` (Figure-1 labels).
    pub outcome: String,
    /// Wall-clock solve time in nanoseconds (machine-dependent).
    pub wall_ns: u64,
    /// Id of the worker that solved it (schedule-dependent).
    pub worker: u64,
    /// Rendered DRAT byte count of the instance's proof (0 when the
    /// campaign ran without proof logging).
    pub proof_bytes: u64,
    /// Probe-derived event totals for the solve.
    pub counters: Counters,
}

impl InstanceTrace {
    /// Encodes as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::from("{\"type\":\"instance\"");
        push_num(&mut s, "seq", self.seq);
        push_str(&mut s, "circuit", &self.circuit);
        push_str(&mut s, "fault", &self.fault);
        push_num(&mut s, "vars", self.vars);
        push_num(&mut s, "clauses", self.clauses);
        push_num(&mut s, "sub_size", self.sub_size);
        push_str(&mut s, "outcome", &self.outcome);
        push_num(&mut s, "wall_ns", self.wall_ns);
        push_num(&mut s, "worker", self.worker);
        push_num(&mut s, "proof_bytes", self.proof_bytes);
        let c = &self.counters;
        push_num(&mut s, "decisions", c.decisions);
        push_num(&mut s, "propagations", c.propagations);
        push_num(&mut s, "conflicts", c.conflicts);
        push_num(&mut s, "backtracks", c.backtracks);
        push_num(&mut s, "cache_hits", c.cache_hits);
        push_num(&mut s, "cache_misses", c.cache_misses);
        push_num(&mut s, "cache_inserts", c.cache_inserts);
        push_num(&mut s, "learned", c.learned);
        push_num(&mut s, "learned_lits", c.learned_lits);
        push_num(&mut s, "assumptions", c.assumptions);
        push_num(&mut s, "learnt_reused", c.learnt_reused);
        push_num(&mut s, "restarts", c.restarts);
        push_num(&mut s, "deadline_checks", c.deadline_checks);
        push_num(&mut s, "max_depth", c.max_depth);
        s.push('}');
        s
    }

    /// A canonical rendering excluding the machine-dependent fields
    /// (`wall_ns`, `worker`), for order-insensitive cross-run comparison.
    pub fn canonical(&self) -> String {
        let mut t = self.clone();
        t.wall_ns = 0;
        t.worker = 0;
        t.to_jsonl()
    }
}

/// Campaign-level gauges: one `"type":"campaign"` line per circuit run,
/// carrying what per-instance lines cannot (queue depth, wasted solves).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignMeta {
    /// Source circuit name.
    pub circuit: String,
    /// Worker threads used.
    pub threads: u64,
    /// Commit-window width (1 = strict in-order committing).
    pub commit_window: u64,
    /// Fault-queue depth (targeted faults).
    pub queue_depth: u64,
    /// Committed solver calls that detected their fault (SAT).
    pub committed_sat: u64,
    /// Committed solver calls that proved their fault untestable or hit a
    /// budget (UNSAT/abort) — useful work, distinct from wasted solves.
    pub committed_unsat: u64,
    /// Faults retired without a committed solver call.
    pub dropped: u64,
    /// Speculative solves superseded by fault dropping at commit time.
    pub wasted_solves: u64,
    /// Faults retired by the static implication pre-pass before any
    /// solver ran (0 when the pre-pass is disabled; absent in traces
    /// written before the pass existed).
    pub static_pruned: u64,
    /// Estimated cut-width of the circuit, when computed.
    pub cutwidth_estimate: Option<u64>,
}

impl CampaignMeta {
    /// Encodes as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::from("{\"type\":\"campaign\"");
        push_str(&mut s, "circuit", &self.circuit);
        push_num(&mut s, "threads", self.threads);
        push_num(&mut s, "commit_window", self.commit_window);
        push_num(&mut s, "queue_depth", self.queue_depth);
        push_num(&mut s, "committed_sat", self.committed_sat);
        push_num(&mut s, "committed_unsat", self.committed_unsat);
        push_num(&mut s, "dropped", self.dropped);
        push_num(&mut s, "wasted_solves", self.wasted_solves);
        if self.static_pruned > 0 {
            push_num(&mut s, "static_pruned", self.static_pruned);
        }
        if let Some(w) = self.cutwidth_estimate {
            push_num(&mut s, "cutwidth_estimate", w);
        }
        s.push('}');
        s
    }
}

/// One parsed trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceLine {
    /// A `"type":"instance"` record.
    Instance(InstanceTrace),
    /// A `"type":"campaign"` record.
    Campaign(CampaignMeta),
}

fn push_num(s: &mut String, key: &str, v: u64) {
    let _ = write!(s, ",\"{key}\":{v}");
}

fn push_str(s: &mut String, key: &str, v: &str) {
    let _ = write!(s, ",\"{key}\":\"{}\"", json_escape(v));
}

/// Escapes a string for embedding in a JSON literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A scanned value in a flat trace object.
enum Scalar {
    Str(String),
    Num(u64),
}

/// Parses one flat JSON object (`{"key": "str" | uint, ...}`) into
/// key/value pairs. Rejects nesting, floats, negatives, booleans — the
/// trace schema uses none of them.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let err = |i: usize, what: &str| format!("byte {i}: {what}");
    let skip_ws = |bytes: &[u8], mut i: usize| {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    };
    i = skip_ws(bytes, i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return Err(err(i, "expected '{'"));
    }
    i += 1;
    let mut out = Vec::new();
    loop {
        i = skip_ws(bytes, i);
        if i < bytes.len() && bytes[i] == b'}' && out.is_empty() {
            i += 1;
            break;
        }
        let (key, next) = parse_string(line, i)?;
        i = skip_ws(bytes, next);
        if i >= bytes.len() || bytes[i] != b':' {
            return Err(err(i, "expected ':'"));
        }
        i = skip_ws(bytes, i + 1);
        if i >= bytes.len() {
            return Err(err(i, "expected value"));
        }
        let value = if bytes[i] == b'"' {
            let (v, next) = parse_string(line, i)?;
            i = next;
            Scalar::Str(v)
        } else if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let n: u64 = line[start..i]
                .parse()
                .map_err(|_| err(start, "integer out of range"))?;
            Scalar::Num(n)
        } else {
            return Err(err(i, "expected string or unsigned integer"));
        };
        out.push((key, value));
        i = skip_ws(bytes, i);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {
                i += 1;
                break;
            }
            _ => return Err(err(i, "expected ',' or '}'")),
        }
    }
    i = skip_ws(bytes, i);
    if i != bytes.len() {
        return Err(err(i, "trailing input after object"));
    }
    Ok(out)
}

/// Parses a quoted JSON string starting at byte `i`; returns the decoded
/// string and the index just past the closing quote.
fn parse_string(line: &str, i: usize) -> Result<(String, usize), String> {
    let bytes = line.as_bytes();
    if i >= bytes.len() || bytes[i] != b'"' {
        return Err(format!("byte {i}: expected '\"'"));
    }
    let mut out = String::new();
    let mut chars = line[i + 1..].char_indices();
    while let Some((off, c)) = chars.next() {
        match c {
            '"' => return Ok((out, i + 1 + off + 1)),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars
                            .next()
                            .ok_or_else(|| format!("byte {i}: truncated \\u escape"))?;
                        code = code * 16
                            + h.to_digit(16)
                                .ok_or_else(|| format!("byte {i}: bad \\u digit"))?;
                    }
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("byte {i}: invalid \\u code point"))?,
                    );
                }
                _ => return Err(format!("byte {i}: bad escape")),
            },
            c => out.push(c),
        }
    }
    Err(format!("byte {i}: unterminated string"))
}

struct Fields {
    pairs: Vec<(String, Scalar)>,
}

impl Fields {
    fn num(&self, key: &str) -> Result<u64, String> {
        match self.pairs.iter().find(|(k, _)| k == key) {
            Some((_, Scalar::Num(n))) => Ok(*n),
            Some((_, Scalar::Str(_))) => Err(format!("field '{key}' is a string, wanted integer")),
            None => Err(format!("missing field '{key}'")),
        }
    }

    fn num_opt(&self, key: &str) -> Result<Option<u64>, String> {
        match self.pairs.iter().find(|(k, _)| k == key) {
            Some((_, Scalar::Num(n))) => Ok(Some(*n)),
            Some((_, Scalar::Str(_))) => Err(format!("field '{key}' is a string, wanted integer")),
            None => Ok(None),
        }
    }

    fn str(&self, key: &str) -> Result<String, String> {
        match self.pairs.iter().find(|(k, _)| k == key) {
            Some((_, Scalar::Str(s))) => Ok(s.clone()),
            Some((_, Scalar::Num(_))) => Err(format!("field '{key}' is a number, wanted string")),
            None => Err(format!("missing field '{key}'")),
        }
    }
}

/// Parses one trace line; returns an error naming the offending field for
/// malformed input.
pub fn parse_jsonl_line(line: &str) -> Result<TraceLine, String> {
    let f = Fields {
        pairs: parse_flat_object(line)?,
    };
    match f.str("type")?.as_str() {
        "instance" => Ok(TraceLine::Instance(InstanceTrace {
            seq: f.num("seq")?,
            circuit: f.str("circuit")?,
            fault: f.str("fault")?,
            vars: f.num("vars")?,
            clauses: f.num("clauses")?,
            sub_size: f.num("sub_size")?,
            outcome: f.str("outcome")?,
            wall_ns: f.num("wall_ns")?,
            worker: f.num("worker")?,
            // Proof logging postdates the original schema; absent in old
            // traces means the campaign did not log proofs.
            proof_bytes: f.num_opt("proof_bytes")?.unwrap_or(0),
            counters: Counters {
                decisions: f.num("decisions")?,
                propagations: f.num("propagations")?,
                conflicts: f.num("conflicts")?,
                backtracks: f.num("backtracks")?,
                cache_hits: f.num("cache_hits")?,
                cache_misses: f.num("cache_misses")?,
                cache_inserts: f.num("cache_inserts")?,
                learned: f.num("learned")?,
                learned_lits: f.num("learned_lits")?,
                // Incremental-solver counters postdate the original
                // schema; absent in old traces means zero.
                assumptions: f.num_opt("assumptions")?.unwrap_or(0),
                learnt_reused: f.num_opt("learnt_reused")?.unwrap_or(0),
                restarts: f.num("restarts")?,
                deadline_checks: f.num("deadline_checks")?,
                max_depth: f.num("max_depth")?,
            },
        })),
        "campaign" => Ok(TraceLine::Campaign(CampaignMeta {
            circuit: f.str("circuit")?,
            threads: f.num("threads")?,
            // Postdates the original schema: strict in-order committing
            // (width 1) was the only mode before windows existed.
            commit_window: f.num_opt("commit_window")?.unwrap_or(1),
            queue_depth: f.num("queue_depth")?,
            committed_sat: f.num("committed_sat")?,
            // Postdates the original schema: old traces folded UNSAT
            // commits into committed_sat, so absent means zero.
            committed_unsat: f.num_opt("committed_unsat")?.unwrap_or(0),
            dropped: f.num("dropped")?,
            wasted_solves: f.num("wasted_solves")?,
            static_pruned: f.num_opt("static_pruned")?.unwrap_or(0),
            cutwidth_estimate: f.num_opt("cutwidth_estimate")?,
        })),
        other => Err(format!("unknown trace line type '{other}'")),
    }
}

/// Parses a whole JSONL document, skipping blank lines. Errors carry the
/// 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceLine>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_jsonl_line(line).map_err(|e| format!("line {}: {e}", ln + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InstanceTrace {
        InstanceTrace {
            seq: 7,
            circuit: "c17".into(),
            fault: "n3/s-a-0".into(),
            vars: 11,
            clauses: 24,
            sub_size: 9,
            outcome: "SAT".into(),
            wall_ns: 120_500,
            worker: 3,
            proof_bytes: 812,
            counters: Counters {
                decisions: 5,
                propagations: 17,
                conflicts: 2,
                backtracks: 2,
                max_depth: 4,
                ..Counters::default()
            },
        }
    }

    #[test]
    fn instance_round_trips() {
        let t = sample();
        let line = t.to_jsonl();
        assert!(line.starts_with("{\"type\":\"instance\""), "{line}");
        match parse_jsonl_line(&line) {
            Ok(TraceLine::Instance(back)) => assert_eq!(back, t),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn campaign_round_trips_with_and_without_width() {
        for width in [None, Some(6)] {
            let m = CampaignMeta {
                circuit: "b9".into(),
                threads: 8,
                commit_window: 16,
                queue_depth: 310,
                committed_sat: 110,
                committed_unsat: 10,
                dropped: 190,
                wasted_solves: 14,
                static_pruned: 3,
                cutwidth_estimate: width,
            };
            match parse_jsonl_line(&m.to_jsonl()) {
                Ok(TraceLine::Campaign(back)) => assert_eq!(back, m),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn campaign_without_commit_window_parses_as_strict_in_order() {
        // A pre-window trace line: commit_window must default to 1.
        let line = "{\"type\":\"campaign\",\"circuit\":\"c17\",\"threads\":2,\
                    \"queue_depth\":22,\"committed_sat\":20,\"dropped\":2,\
                    \"wasted_solves\":0}";
        match parse_jsonl_line(line) {
            Ok(TraceLine::Campaign(m)) => assert_eq!(m.commit_window, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn canonical_zeroes_machine_fields_only() {
        let a = sample();
        let mut b = sample();
        b.wall_ns = 999;
        b.worker = 0;
        assert_eq!(a.canonical(), b.canonical());
        b.counters.decisions += 1;
        assert_ne!(a.canonical(), b.canonical());
    }

    #[test]
    fn string_escapes_survive() {
        let mut t = sample();
        t.fault = "odd \"name\"\twith\\slashes\u{1}".into();
        match parse_jsonl_line(&t.to_jsonl()) {
            Ok(TraceLine::Instance(back)) => assert_eq!(back.fault, t.fault),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn whole_document_parses_and_reports_bad_lines() {
        let doc = format!(
            "{}\n\n{}\n",
            CampaignMeta {
                circuit: "c17".into(),
                threads: 1,
                commit_window: 1,
                queue_depth: 22,
                committed_sat: 20,
                committed_unsat: 2,
                dropped: 0,
                wasted_solves: 0,
                static_pruned: 0,
                cutwidth_estimate: None,
            }
            .to_jsonl(),
            sample().to_jsonl()
        );
        let lines = parse_jsonl(&doc).expect("valid document");
        assert_eq!(lines.len(), 2);
        assert!(matches!(lines[0], TraceLine::Campaign(_)));
        assert!(matches!(lines[1], TraceLine::Instance(_)));

        let bad = "{\"type\":\"instance\",\"seq\":1}";
        let e = parse_jsonl(&format!("{}\n{bad}\n", sample().to_jsonl()))
            .expect_err("missing fields must fail");
        assert!(e.starts_with("line 2:"), "{e}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in [
            "",
            "{",
            "{}",
            "[1]",
            "{\"type\":\"instance\"} trailing",
            "{\"type\":42}",
            "{\"type\":\"instance\",\"seq\":-1}",
            "{\"type\":\"instance\",\"seq\":1.5}",
            "{\"type\":\"nope\"}",
            "{\"unterminated",
        ] {
            assert!(parse_jsonl_line(bad).is_err(), "accepted: {bad}");
        }
    }
}
