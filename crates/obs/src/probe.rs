//! The [`Probe`] trait: typed solver events with no-op defaults.
//!
//! Solvers are generic over `P: Probe + ?Sized` internally; the public
//! `solve()` entry point instantiates with [`NoProbe`] (a zero-sized type
//! whose methods are empty `#[inline]` bodies), so the compiler erases
//! every probe call. The probed entry point instantiates the same generic
//! at `dyn Probe`, paying virtual dispatch only when someone is listening.

use std::time::Duration;

/// Final status of a probed solve, mirroring `sat::Outcome` without the
/// model payload (this crate must not depend on the solver crates).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// A satisfying assignment was found.
    Sat,
    /// The formula was proved unsatisfiable.
    Unsat,
    /// A node/conflict/wall budget expired first.
    Aborted,
}

impl ProbeOutcome {
    /// Stable lowercase label used in traces and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            ProbeOutcome::Sat => "sat",
            ProbeOutcome::Unsat => "unsat",
            ProbeOutcome::Aborted => "aborted",
        }
    }

    /// Inverse of [`ProbeOutcome::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "sat" => Some(ProbeOutcome::Sat),
            "unsat" => Some(ProbeOutcome::Unsat),
            "aborted" => Some(ProbeOutcome::Aborted),
            _ => None,
        }
    }
}

/// Receiver of solver events.
///
/// All methods default to no-ops so implementors subscribe only to what
/// they need. The trait is dyn-safe: campaign engines hold
/// `&mut dyn Probe` and solvers monomorphize over `P: Probe + ?Sized`.
pub trait Probe {
    /// Whether this probe wants events at all. Solvers use this to gate
    /// work that is only observable through the probe (e.g. reading the
    /// wall clock for `instance_end`). [`NoProbe`] returns `false`.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// A solve is starting on a formula of `vars` variables and
    /// `clauses` clauses.
    #[inline]
    fn instance_begin(&mut self, vars: usize, clauses: usize) {
        let _ = (vars, clauses);
    }

    /// The solver committed a branching decision at `depth`.
    #[inline]
    fn decision(&mut self, depth: usize) {
        let _ = depth;
    }

    /// The solver undid decisions back to `depth`.
    #[inline]
    fn backtrack(&mut self, depth: usize) {
        let _ = depth;
    }

    /// One literal was assigned by inference (unit propagation or the
    /// fixed-order scan in the chronological solvers).
    #[inline]
    fn propagation(&mut self) {}

    /// A clause became empty under the current assignment.
    #[inline]
    fn conflict(&mut self) {}

    /// The caching solver found the residual sub-formula in its UNSAT
    /// cache and pruned the subtree.
    #[inline]
    fn cache_hit(&mut self) {}

    /// The caching solver looked up a residual sub-formula and missed.
    #[inline]
    fn cache_miss(&mut self) {}

    /// The caching solver recorded a refuted sub-formula.
    #[inline]
    fn cache_insert(&mut self) {}

    /// CDCL learned a clause of `len` literals.
    #[inline]
    fn learned(&mut self, len: usize) {
        let _ = len;
    }

    /// An incremental solve started under `n` assumption literals
    /// (incremental CDCL only; fresh solves never emit this).
    #[inline]
    fn assumptions(&mut self, n: usize) {
        let _ = n;
    }

    /// An incremental solve started with `n` learnt clauses retained from
    /// earlier solves on the same instance (incremental CDCL only). A
    /// fresh solver always starts at 0 and never emits this, so the event
    /// distinguishes warm conflicts from cold ones in traces.
    #[inline]
    fn learnt_reused(&mut self, n: usize) {
        let _ = n;
    }

    /// CDCL restarted.
    #[inline]
    fn restart(&mut self) {}

    /// The solver polled its wall-clock deadline.
    #[inline]
    fn deadline_check(&mut self) {}

    /// The solve finished with `outcome` after `wall` of wall time.
    /// `wall` is [`Duration::ZERO`] when the probe reported itself
    /// disabled at `instance_begin` time.
    #[inline]
    fn instance_end(&mut self, outcome: ProbeOutcome, wall: Duration) {
        let _ = (outcome, wall);
    }
}

/// The zero-cost probe: a zero-sized type whose event methods are empty.
///
/// `solve()` on every solver routes through the same generic body as
/// `solve_probed()`, instantiated at `NoProbe`; the optimizer removes the
/// calls entirely, which the `probe` criterion bench guards.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbe;

impl Probe for NoProbe {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

// The whole point: NoProbe carries no state, so monomorphized probe calls
// have nothing to touch.
const _: () = assert!(std::mem::size_of::<NoProbe>() == 0);

/// Machine-independent event totals for one solve, derived purely from
/// the probe stream. This is the cross-solver summary that replaces
/// ad-hoc per-solver stats in campaign reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Branching decisions committed.
    pub decisions: u64,
    /// Literals assigned by inference.
    pub propagations: u64,
    /// Empty clauses reached.
    pub conflicts: u64,
    /// Backtrack events.
    pub backtracks: u64,
    /// UNSAT-cache hits (caching solver only).
    pub cache_hits: u64,
    /// UNSAT-cache misses (caching solver only).
    pub cache_misses: u64,
    /// UNSAT-cache insertions (caching solver only).
    pub cache_inserts: u64,
    /// Clauses learned (CDCL only).
    pub learned: u64,
    /// Total literals across learned clauses (CDCL only).
    pub learned_lits: u64,
    /// Assumption literals set at solve start (incremental CDCL only).
    pub assumptions: u64,
    /// Learnt clauses retained from earlier solves and available at solve
    /// start (incremental CDCL only).
    pub learnt_reused: u64,
    /// Restarts (CDCL only).
    pub restarts: u64,
    /// Wall-clock deadline polls.
    pub deadline_checks: u64,
    /// Deepest decision level reached.
    pub max_depth: u64,
}

impl Counters {
    /// Element-wise accumulation, for per-worker and per-campaign totals.
    pub fn add(&mut self, other: &Counters) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.backtracks += other.backtracks;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_inserts += other.cache_inserts;
        self.learned += other.learned;
        self.learned_lits += other.learned_lits;
        self.assumptions += other.assumptions;
        self.learnt_reused += other.learnt_reused;
        self.restarts += other.restarts;
        self.deadline_checks += other.deadline_checks;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

/// A probe that tallies the event stream into [`Counters`] plus the
/// instance envelope (sizes, outcome, wall time). One `CountingProbe` is
/// reused across many solves by a campaign worker; `instance_begin`
/// resets it.
#[derive(Clone, Debug, Default)]
pub struct CountingProbe {
    /// Event totals for the most recent (or in-progress) solve.
    pub counters: Counters,
    /// Variable count reported at `instance_begin`.
    pub vars: usize,
    /// Clause count reported at `instance_begin`.
    pub clauses: usize,
    /// Outcome reported at `instance_end`, if the solve finished.
    pub outcome: Option<ProbeOutcome>,
    /// Wall time reported at `instance_end`.
    pub wall: Duration,
}

impl CountingProbe {
    /// A fresh, zeroed probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all state; equivalent to what `instance_begin` does.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl Probe for CountingProbe {
    fn instance_begin(&mut self, vars: usize, clauses: usize) {
        self.reset();
        self.vars = vars;
        self.clauses = clauses;
    }

    fn decision(&mut self, depth: usize) {
        self.counters.decisions += 1;
        self.counters.max_depth = self.counters.max_depth.max(depth as u64);
    }

    fn backtrack(&mut self, _depth: usize) {
        self.counters.backtracks += 1;
    }

    fn propagation(&mut self) {
        self.counters.propagations += 1;
    }

    fn conflict(&mut self) {
        self.counters.conflicts += 1;
    }

    fn cache_hit(&mut self) {
        self.counters.cache_hits += 1;
    }

    fn cache_miss(&mut self) {
        self.counters.cache_misses += 1;
    }

    fn cache_insert(&mut self) {
        self.counters.cache_inserts += 1;
    }

    fn learned(&mut self, len: usize) {
        self.counters.learned += 1;
        self.counters.learned_lits += len as u64;
    }

    fn assumptions(&mut self, n: usize) {
        self.counters.assumptions += n as u64;
    }

    fn learnt_reused(&mut self, n: usize) {
        self.counters.learnt_reused += n as u64;
    }

    fn restart(&mut self) {
        self.counters.restarts += 1;
    }

    fn deadline_check(&mut self) {
        self.counters.deadline_checks += 1;
    }

    fn instance_end(&mut self, outcome: ProbeOutcome, wall: Duration) {
        self.outcome = Some(outcome);
        self.wall = wall;
    }
}

/// A single solver event, as captured by [`RecordingProbe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// `instance_begin(vars, clauses)`.
    InstanceBegin {
        /// Formula variable count.
        vars: usize,
        /// Formula clause count.
        clauses: usize,
    },
    /// `decision(depth)`.
    Decision(usize),
    /// `backtrack(depth)`.
    Backtrack(usize),
    /// `propagation()`.
    Propagation,
    /// `conflict()`.
    Conflict,
    /// `cache_hit()`.
    CacheHit,
    /// `cache_miss()`.
    CacheMiss,
    /// `cache_insert()`.
    CacheInsert,
    /// `learned(len)`.
    Learned(usize),
    /// `assumptions(n)`.
    Assumptions(usize),
    /// `learnt_reused(n)`.
    LearntReused(usize),
    /// `restart()`.
    Restart,
    /// `deadline_check()`.
    DeadlineCheck,
    /// `instance_end(outcome, _)`; wall time is deliberately dropped so
    /// recorded streams compare equal across runs.
    InstanceEnd(ProbeOutcome),
}

/// A probe that records the raw event stream, capped at `limit` events
/// so a runaway solve cannot exhaust memory. Used by tests that assert
/// on event ordering.
#[derive(Clone, Debug)]
pub struct RecordingProbe {
    /// The captured events, in emission order.
    pub events: Vec<Event>,
    /// Maximum number of events to keep.
    pub limit: usize,
    /// Events dropped after the cap was reached.
    pub dropped: u64,
}

impl Default for RecordingProbe {
    fn default() -> Self {
        RecordingProbe {
            events: Vec::new(),
            limit: 1 << 20,
            dropped: 0,
        }
    }
}

impl RecordingProbe {
    /// A recorder with the default 1Mi-event cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder keeping at most `limit` events.
    pub fn with_limit(limit: usize) -> Self {
        RecordingProbe {
            limit,
            ..Self::default()
        }
    }

    fn push(&mut self, e: Event) {
        if self.events.len() < self.limit {
            self.events.push(e);
        } else {
            self.dropped += 1;
        }
    }
}

impl Probe for RecordingProbe {
    fn instance_begin(&mut self, vars: usize, clauses: usize) {
        self.push(Event::InstanceBegin { vars, clauses });
    }

    fn decision(&mut self, depth: usize) {
        self.push(Event::Decision(depth));
    }

    fn backtrack(&mut self, depth: usize) {
        self.push(Event::Backtrack(depth));
    }

    fn propagation(&mut self) {
        self.push(Event::Propagation);
    }

    fn conflict(&mut self) {
        self.push(Event::Conflict);
    }

    fn cache_hit(&mut self) {
        self.push(Event::CacheHit);
    }

    fn cache_miss(&mut self) {
        self.push(Event::CacheMiss);
    }

    fn cache_insert(&mut self) {
        self.push(Event::CacheInsert);
    }

    fn learned(&mut self, len: usize) {
        self.push(Event::Learned(len));
    }

    fn assumptions(&mut self, n: usize) {
        self.push(Event::Assumptions(n));
    }

    fn learnt_reused(&mut self, n: usize) {
        self.push(Event::LearntReused(n));
    }

    fn restart(&mut self) {
        self.push(Event::Restart);
    }

    fn deadline_check(&mut self) {
        self.push(Event::DeadlineCheck);
    }

    fn instance_end(&mut self, outcome: ProbeOutcome, _wall: Duration) {
        self.push(Event::InstanceEnd(outcome));
    }
}

/// Fans one event stream out to two probes, e.g. counting while
/// recording. Compose nested `Tee`s for more.
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Probe, B: Probe> Probe for Tee<A, B> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn instance_begin(&mut self, vars: usize, clauses: usize) {
        self.0.instance_begin(vars, clauses);
        self.1.instance_begin(vars, clauses);
    }

    fn decision(&mut self, depth: usize) {
        self.0.decision(depth);
        self.1.decision(depth);
    }

    fn backtrack(&mut self, depth: usize) {
        self.0.backtrack(depth);
        self.1.backtrack(depth);
    }

    fn propagation(&mut self) {
        self.0.propagation();
        self.1.propagation();
    }

    fn conflict(&mut self) {
        self.0.conflict();
        self.1.conflict();
    }

    fn cache_hit(&mut self) {
        self.0.cache_hit();
        self.1.cache_hit();
    }

    fn cache_miss(&mut self) {
        self.0.cache_miss();
        self.1.cache_miss();
    }

    fn cache_insert(&mut self) {
        self.0.cache_insert();
        self.1.cache_insert();
    }

    fn learned(&mut self, len: usize) {
        self.0.learned(len);
        self.1.learned(len);
    }

    fn assumptions(&mut self, n: usize) {
        self.0.assumptions(n);
        self.1.assumptions(n);
    }

    fn learnt_reused(&mut self, n: usize) {
        self.0.learnt_reused(n);
        self.1.learnt_reused(n);
    }

    fn restart(&mut self) {
        self.0.restart();
        self.1.restart();
    }

    fn deadline_check(&mut self) {
        self.0.deadline_check();
        self.1.deadline_check();
    }

    fn instance_end(&mut self, outcome: ProbeOutcome, wall: Duration) {
        self.0.instance_end(outcome, wall);
        self.1.instance_end(outcome, wall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<P: Probe + ?Sized>(p: &mut P) {
        p.instance_begin(4, 9);
        p.assumptions(2);
        p.learnt_reused(5);
        p.decision(1);
        p.propagation();
        p.decision(2);
        p.conflict();
        p.backtrack(1);
        p.cache_miss();
        p.cache_insert();
        p.cache_hit();
        p.learned(3);
        p.restart();
        p.deadline_check();
        p.instance_end(ProbeOutcome::Unsat, Duration::from_micros(7));
    }

    #[test]
    fn counting_probe_tallies_every_event() {
        let mut p = CountingProbe::new();
        drive(&mut p);
        assert_eq!(p.vars, 4);
        assert_eq!(p.clauses, 9);
        assert_eq!(p.outcome, Some(ProbeOutcome::Unsat));
        assert_eq!(p.wall, Duration::from_micros(7));
        let c = p.counters;
        assert_eq!(c.decisions, 2);
        assert_eq!(c.propagations, 1);
        assert_eq!(c.conflicts, 1);
        assert_eq!(c.backtracks, 1);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.cache_misses, 1);
        assert_eq!(c.cache_inserts, 1);
        assert_eq!(c.learned, 1);
        assert_eq!(c.learned_lits, 3);
        assert_eq!(c.assumptions, 2);
        assert_eq!(c.learnt_reused, 5);
        assert_eq!(c.restarts, 1);
        assert_eq!(c.deadline_checks, 1);
        assert_eq!(c.max_depth, 2);
    }

    #[test]
    fn instance_begin_resets_counting_probe() {
        let mut p = CountingProbe::new();
        drive(&mut p);
        p.instance_begin(2, 3);
        assert_eq!(p.counters, Counters::default());
        assert_eq!(p.outcome, None);
        assert_eq!(p.vars, 2);
    }

    #[test]
    fn recording_probe_preserves_order_and_caps() {
        let mut p = RecordingProbe::with_limit(3);
        drive(&mut p);
        assert_eq!(p.events.len(), 3);
        assert_eq!(
            p.events[0],
            Event::InstanceBegin {
                vars: 4,
                clauses: 9
            }
        );
        assert_eq!(p.events[1], Event::Assumptions(2));
        assert_eq!(p.events[2], Event::LearntReused(5));
        assert_eq!(p.dropped, 12);
    }

    #[test]
    fn tee_feeds_both_and_dyn_probe_works() {
        let mut tee = Tee(CountingProbe::new(), RecordingProbe::new());
        let dynp: &mut dyn Probe = &mut tee;
        drive(dynp);
        assert_eq!(tee.0.counters.decisions, 2);
        assert_eq!(tee.1.events.len(), 15);
        assert!(tee.enabled());
    }

    #[test]
    fn no_probe_is_disabled_and_zero_sized() {
        assert!(!NoProbe.enabled());
        assert_eq!(std::mem::size_of::<NoProbe>(), 0);
    }

    #[test]
    fn counters_add_sums_and_maxes_depth() {
        let mut a = Counters {
            decisions: 1,
            max_depth: 5,
            ..Counters::default()
        };
        let b = Counters {
            decisions: 2,
            conflicts: 4,
            max_depth: 3,
            ..Counters::default()
        };
        a.add(&b);
        assert_eq!(a.decisions, 3);
        assert_eq!(a.conflicts, 4);
        assert_eq!(a.max_depth, 5);
    }

    #[test]
    fn outcome_labels_round_trip() {
        for o in [
            ProbeOutcome::Sat,
            ProbeOutcome::Unsat,
            ProbeOutcome::Aborted,
        ] {
            assert_eq!(ProbeOutcome::from_label(o.label()), Some(o));
        }
        assert_eq!(ProbeOutcome::from_label("bogus"), None);
    }
}
