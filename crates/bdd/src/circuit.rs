//! Symbolic circuit evaluation: one BDD per primary output.

use std::error::Error;
use std::fmt;

use atpg_easy_netlist::{topo, GateKind, Netlist};

use crate::{BddManager, BddRef};

/// Errors from symbolic evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Building exceeded the node budget (the function's BDD is too large
    /// under this variable order).
    NodeBudgetExceeded {
        /// The budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NodeBudgetExceeded { budget } => {
                write!(f, "BDD construction exceeded {budget} nodes")
            }
        }
    }
}

impl Error for BuildError {}

/// Builds the BDDs of all primary outputs of `nl` in the given manager,
/// with BDD variable `i` bound to `nl.inputs()[i]`.
///
/// `node_budget` aborts runaway constructions (BDDs are exponential for
/// multiplier-like circuits — that blow-up is Section 6's point).
///
/// # Errors
///
/// [`BuildError::NodeBudgetExceeded`] when the manager grows past the
/// budget.
///
/// # Panics
///
/// Panics if the manager was created with fewer variables than the
/// circuit has inputs, or the netlist is cyclic.
pub fn build_outputs(
    m: &mut BddManager,
    nl: &Netlist,
    node_budget: usize,
) -> Result<Vec<BddRef>, BuildError> {
    assert!(
        m.num_vars() >= nl.num_inputs(),
        "manager must cover every primary input"
    );
    let mut of_net: Vec<Option<BddRef>> = vec![None; nl.num_nets()];
    for (i, &net) in nl.inputs().iter().enumerate() {
        of_net[net.index()] = Some(m.var(i));
    }
    let order = topo::topo_order(nl).expect("acyclic circuits only");
    for gid in order {
        let gate = nl.gate(gid);
        let ins: Vec<BddRef> = gate
            .inputs
            .iter()
            .map(|&n| of_net[n.index()].expect("inputs precede users"))
            .collect();
        let out = match gate.kind {
            GateKind::And | GateKind::Nand => {
                let mut acc = m.constant(true);
                for x in ins {
                    acc = m.and(acc, x);
                }
                if gate.kind == GateKind::Nand {
                    m.not(acc)
                } else {
                    acc
                }
            }
            GateKind::Or | GateKind::Nor => {
                let mut acc = m.constant(false);
                for x in ins {
                    acc = m.or(acc, x);
                }
                if gate.kind == GateKind::Nor {
                    m.not(acc)
                } else {
                    acc
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let mut acc = m.constant(false);
                for x in ins {
                    acc = m.xor(acc, x);
                }
                if gate.kind == GateKind::Xnor {
                    m.not(acc)
                } else {
                    acc
                }
            }
            GateKind::Not => m.not(ins[0]),
            GateKind::Buf => ins[0],
            GateKind::Const0 => m.constant(false),
            GateKind::Const1 => m.constant(true),
        };
        if m.num_nodes() > node_budget {
            return Err(BuildError::NodeBudgetExceeded {
                budget: node_budget,
            });
        }
        of_net[gate.output.index()] = Some(out);
    }
    Ok(nl
        .outputs()
        .iter()
        .map(|&o| of_net[o.index()].expect("outputs are driven"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_netlist::sim;

    fn check_against_simulation(nl: &Netlist) {
        let mut m = BddManager::new(nl.num_inputs());
        let outs = build_outputs(&mut m, nl, 1 << 22).expect("small circuit");
        let n = nl.num_inputs();
        assert!(n <= 12);
        for mask in 0u32..(1 << n) {
            let ins: Vec<bool> = (0..n).map(|i| mask >> i & 1 != 0).collect();
            let expect = sim::eval_outputs(nl, &ins);
            for (o, &bdd) in outs.iter().enumerate() {
                assert_eq!(m.eval(bdd, &ins), expect[o], "output {o} mask {mask}");
            }
        }
    }

    #[test]
    fn matches_simulation_on_c17_like() {
        let nl = atpg_easy_netlist::parser::bench::parse(
            "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
             10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
             22 = NAND(10, 16)\n23 = NAND(16, 19)\n",
        )
        .unwrap();
        check_against_simulation(&nl);
    }

    #[test]
    fn matches_simulation_on_all_gate_kinds() {
        use atpg_easy_netlist::GateKind::*;
        let mut nl = Netlist::new("kinds");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        for (i, kind) in [And, Or, Nand, Nor, Xor, Xnor].into_iter().enumerate() {
            let y = nl
                .add_gate_named(kind, vec![a, b, c], format!("y{i}"))
                .unwrap();
            nl.add_output(y);
        }
        let k1 = nl.add_gate_named(Const1, vec![], "k1").unwrap();
        let nb = nl.add_gate_named(Not, vec![b], "nb").unwrap();
        let z = nl.add_gate_named(And, vec![k1, nb], "z").unwrap();
        nl.add_output(z);
        check_against_simulation(&nl);
    }

    #[test]
    fn budget_aborts_multiplier_blowup() {
        // The middle output bits of a multiplier have exponential BDDs;
        // a small budget must trip.
        let nl = atpg_easy_netlist::decompose::decompose(
            &{
                // build inline 6x6 multiplier-like via parser dependency-free:
                // use a dense XOR/AND mesh instead to avoid circular dev-deps.
                let mut nl = Netlist::new("mesh");
                let xs: Vec<_> = (0..12).map(|i| nl.add_input(format!("x{i}"))).collect();
                let mut layer = xs.clone();
                for l in 0..6 {
                    let mut next = Vec::new();
                    for i in 0..layer.len() - 1 {
                        let g = if (i + l) % 2 == 0 {
                            atpg_easy_netlist::GateKind::Xor
                        } else {
                            atpg_easy_netlist::GateKind::And
                        };
                        next.push(
                            nl.add_gate_named(g, vec![layer[i], layer[i + 1]], format!("m{l}_{i}"))
                                .unwrap(),
                        );
                    }
                    layer = next;
                }
                for &o in &layer {
                    nl.add_output(o);
                }
                nl
            },
            3,
        )
        .unwrap();
        let mut m = BddManager::new(nl.num_inputs());
        match build_outputs(&mut m, &nl, 64) {
            Err(BuildError::NodeBudgetExceeded { budget: 64 }) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn parity_tree_stays_small() {
        let mut nl = Netlist::new("par");
        let xs: Vec<_> = (0..8).map(|i| nl.add_input(format!("x{i}"))).collect();
        let y = nl
            .add_gate_named(atpg_easy_netlist::GateKind::Xor, xs[..2].to_vec(), "t0")
            .unwrap();
        let mut acc = y;
        for (i, &x) in xs[2..].iter().enumerate() {
            acc = nl
                .add_gate_named(
                    atpg_easy_netlist::GateKind::Xor,
                    vec![acc, x],
                    format!("t{}", i + 1),
                )
                .unwrap();
        }
        nl.add_output(acc);
        let mut m = BddManager::new(8);
        let outs = build_outputs(&mut m, &nl, 10_000).unwrap();
        assert_eq!(m.size(outs[0]), 2 * 8 - 1);
    }
}
