//! A reduced ordered binary decision diagram (ROBDD) package, built for
//! the paper's Section 6: contrasting the cut-width bound on
//! caching-based backtracking with the Berman \[1\] / McMillan \[19\] width
//! bounds on BDD size.
//!
//! CIRCUIT-SAT could also be decided by building the output BDD and
//! checking it differs from the constant 0; McMillan bounds that BDD by
//! `n · 2^(w_f · 2^(w_r))` over any linear arrangement with forward width
//! `w_f` and reverse width `w_r`
//! (the `directed_widths` helper lives in the cut-width crate's
//! `directed` module). The experiments pair that bound with measured BDD
//! sizes from this package.
//!
//! The implementation is a classic hash-consed node table with an apply
//! cache: see [`BddManager`].
//!
//! # Example
//!
//! ```
//! use atpg_easy_bdd::BddManager;
//!
//! let mut m = BddManager::new(2);
//! let a = m.var(0);
//! let b = m.var(1);
//! let f = m.and(a, b);
//! assert!(m.eval(f, &[true, true]));
//! assert!(!m.eval(f, &[true, false]));
//! assert_eq!(m.sat_count(f), 1.0);
//! ```

mod circuit;
mod manager;

pub use circuit::{build_outputs, BuildError};
pub use manager::{BddManager, BddRef};
