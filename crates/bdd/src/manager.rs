//! The hash-consed ROBDD node manager.

use std::collections::HashMap;

/// A reference to a BDD node (or terminal) inside one [`BddManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-false terminal.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant-true terminal.
    pub const TRUE: BddRef = BddRef(1);

    /// Whether this is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// A reduced ordered BDD manager over a fixed variable count with the
/// natural variable order `0 < 1 < … < n−1`.
///
/// Nodes are hash-consed (no duplicate `(var, lo, hi)` triples, no
/// redundant tests), so structural equality of [`BddRef`]s is functional
/// equality.
#[derive(Debug, Clone)]
pub struct BddManager {
    num_vars: usize,
    nodes: Vec<Node>,
    unique: HashMap<Node, BddRef>,
    apply_cache: HashMap<(Op, BddRef, BddRef), BddRef>,
    not_cache: HashMap<BddRef, BddRef>,
}

impl BddManager {
    /// Creates a manager over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        BddManager {
            num_vars,
            // Slots 0/1 are reserved for the terminals (var = u32::MAX).
            nodes: vec![
                Node {
                    var: u32::MAX,
                    lo: BddRef::FALSE,
                    hi: BddRef::FALSE,
                },
                Node {
                    var: u32::MAX,
                    lo: BddRef::TRUE,
                    hi: BddRef::TRUE,
                },
            ],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total nodes ever allocated (including the two terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The projection function of variable `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_vars`.
    pub fn var(&mut self, index: usize) -> BddRef {
        assert!(index < self.num_vars, "variable out of range");
        self.mk(index as u32, BddRef::FALSE, BddRef::TRUE)
    }

    /// The constant `value`.
    pub fn constant(&self, value: bool) -> BddRef {
        if value {
            BddRef::TRUE
        } else {
            BddRef::FALSE
        }
    }

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo; // redundant test
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    fn top_var(&self, f: BddRef) -> u32 {
        self.nodes[f.0 as usize].var
    }

    fn cofactors(&self, f: BddRef, var: u32) -> (BddRef, BddRef) {
        if f.is_terminal() || self.top_var(f) != var {
            (f, f)
        } else {
            let n = self.nodes[f.0 as usize];
            (n.lo, n.hi)
        }
    }

    fn apply(&mut self, op: Op, f: BddRef, g: BddRef) -> BddRef {
        // Terminal short-cuts.
        match (op, f, g) {
            (Op::And, BddRef::FALSE, _) | (Op::And, _, BddRef::FALSE) => return BddRef::FALSE,
            (Op::And, BddRef::TRUE, x) | (Op::And, x, BddRef::TRUE) => return x,
            (Op::Or, BddRef::TRUE, _) | (Op::Or, _, BddRef::TRUE) => return BddRef::TRUE,
            (Op::Or, BddRef::FALSE, x) | (Op::Or, x, BddRef::FALSE) => return x,
            (Op::Xor, BddRef::FALSE, x) | (Op::Xor, x, BddRef::FALSE) => return x,
            (Op::Xor, BddRef::TRUE, x) | (Op::Xor, x, BddRef::TRUE) => return self.not(x),
            _ => {}
        }
        if f == g {
            return match op {
                Op::And | Op::Or => f,
                Op::Xor => BddRef::FALSE,
            };
        }
        // Commutative: canonicalize the cache key.
        let key = (op, f.min(g), f.max(g));
        if let Some(&r) = self.apply_cache.get(&key) {
            return r;
        }
        let var = self.top_var(f).min(self.top_var(g));
        let (f0, f1) = self.cofactors(f, var);
        let (g0, g1) = self.cofactors(g, var);
        let lo = self.apply(op, f0, g0);
        let hi = self.apply(op, f1, g1);
        let r = self.mk(var, lo, hi);
        self.apply_cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.apply(Op::And, f, g)
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.apply(Op::Xor, f, g)
    }

    /// Negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        match f {
            BddRef::FALSE => return BddRef::TRUE,
            BddRef::TRUE => return BddRef::FALSE,
            _ => {}
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return r;
        }
        let n = self.nodes[f.0 as usize];
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(f, r);
        self.not_cache.insert(r, f);
        r
    }

    /// Evaluates `f` under a complete assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < num_vars`.
    pub fn eval(&self, mut f: BddRef, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars, "assignment too short");
        while !f.is_terminal() {
            let n = self.nodes[f.0 as usize];
            f = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
        f == BddRef::TRUE
    }

    /// Number of distinct nodes reachable from `f` (terminals excluded) —
    /// the "BDD size" of the Section-6 bounds.
    pub fn size(&self, f: BddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(x) = stack.pop() {
            if x.is_terminal() || !seen.insert(x) {
                continue;
            }
            let n = self.nodes[x.0 as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len()
    }

    /// Number of distinct nodes reachable from any of `roots` (shared
    /// nodes counted once).
    pub fn shared_size(&self, roots: &[BddRef]) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<BddRef> = roots.to_vec();
        while let Some(x) = stack.pop() {
            if x.is_terminal() || !seen.insert(x) {
                continue;
            }
            let n = self.nodes[x.0 as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len()
    }

    /// Number of satisfying assignments of `f` over all `num_vars`
    /// variables, as an `f64` (exact for < 2⁵³).
    pub fn sat_count(&self, f: BddRef) -> f64 {
        fn count(m: &BddManager, f: BddRef, memo: &mut HashMap<BddRef, f64>) -> f64 {
            // Fraction of the full space that satisfies f.
            match f {
                BddRef::FALSE => return 0.0,
                BddRef::TRUE => return 1.0,
                _ => {}
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let n = m.nodes[f.0 as usize];
            let c = 0.5 * count(m, n.lo, memo) + 0.5 * count(m, n.hi, memo);
            memo.insert(f, c);
            c
        }
        let mut memo = HashMap::new();
        count(self, f, &mut memo) * (2f64).powi(self.num_vars as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let mut m = BddManager::new(2);
        assert!(m.eval(BddRef::TRUE, &[false, false]));
        assert!(!m.eval(BddRef::FALSE, &[true, true]));
        let a = m.var(0);
        assert!(m.eval(a, &[true, false]));
        assert!(!m.eval(a, &[false, true]));
    }

    #[test]
    fn hash_consing_canonicalizes() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba, "structural equality = functional equality");
        let t1 = m.or(ab, a);
        assert_eq!(t1, a, "absorption reduces to a");
    }

    #[test]
    fn xor_and_not() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let x = m.xor(a, b);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(m.eval(x, &[va, vb]), va ^ vb);
        }
        let nx = m.not(x);
        let back = m.not(nx);
        assert_eq!(back, x, "negation is an involution");
    }

    #[test]
    fn de_morgan() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let and = m.and(a, b);
        let left = m.not(and);
        let na = m.not(a);
        let nb = m.not(b);
        let right = m.or(na, nb);
        assert_eq!(left, right);
    }

    #[test]
    fn sat_count_small() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.or(a, b); // 6 of 8 assignments
        assert_eq!(m.sat_count(f), 6.0);
        assert_eq!(m.sat_count(BddRef::TRUE), 8.0);
        assert_eq!(m.sat_count(BddRef::FALSE), 0.0);
    }

    #[test]
    fn size_counts_reachable_nodes() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let abc = m.and(ab, c);
        // Conjunction chain: one node per variable.
        assert_eq!(m.size(abc), 3);
        assert_eq!(m.size(BddRef::TRUE), 0);
        // `ab` and `abc` share no internal nodes (their b-nodes differ in
        // the hi child), so the shared count is the plain sum.
        assert_eq!(m.shared_size(&[abc, ab]), 3 + 2);
    }

    #[test]
    fn parity_bdd_is_linear_in_vars() {
        // XOR chains have 2n−1 nodes under any order — the classic BDD
        // best case.
        let n = 10;
        let mut m = BddManager::new(n);
        let mut acc = m.constant(false);
        for i in 0..n {
            let v = m.var(i);
            acc = m.xor(acc, v);
        }
        assert_eq!(m.size(acc), 2 * n - 1);
    }

    #[test]
    fn redundant_tests_removed() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let na = m.not(a);
        let taut = m.or(a, na);
        assert_eq!(taut, BddRef::TRUE);
    }
}
