//! Campaign proof streams: one linear event sequence certifying many
//! solver verdicts.
//!
//! A fault campaign is not one SAT instance but thousands, and the
//! incremental engine threads one clause database through all of them —
//! clauses learnt for fault 17 stay valid for fault 3018. A per-instance
//! DRAT file cannot express that; a *stream* can: axioms and derivations
//! interleave in solver order, and `SolveBegin`/`SolveEnd` brackets mark
//! which verdict each stretch certifies.
//!
//! The from-scratch engine uses the same format with a [`Event::Reset`]
//! before each fault (fresh formula, fresh database), so one auditor
//! serves both paths.
//!
//! # Certification rules
//!
//! - Every [`Event::Derive`] must be RUP over the live database; every
//!   [`Event::Delete`] must name an active clause.
//! - An `Unsat` verdict is certified when the empty clause has been
//!   derived, or the last derivation of the instance is a subset of the
//!   negated assumptions (the failing-subset clause of an assumption
//!   solve).
//! - A `Sat` verdict is certified when the claimed model satisfies every
//!   axiom recorded so far plus the instance's assumptions.
//! - An `Aborted` verdict, or an explicit [`Event::Uncertified`] marker
//!   (e.g. a cache-served verdict), yields `Uncertified` — reported, not
//!   silently passed.

use std::fmt;

use crate::checker::Checker;
use crate::model::model_satisfies;

/// A solver's claimed answer for one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Satisfiable, with a model in the `SolveEnd` event.
    Sat,
    /// Unsatisfiable (under the instance's assumptions, if any).
    Unsat,
    /// Resource budget exhausted; no claim made.
    Aborted,
}

impl Verdict {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Sat => "sat",
            Verdict::Unsat => "unsat",
            Verdict::Aborted => "aborted",
        }
    }
}

/// One event of a campaign proof stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Clears the database: the next instance starts from a fresh
    /// formula (from-scratch engines emit one per fault).
    Reset,
    /// An original-formula clause, recorded by the encoder **before**
    /// any solver-side normalization.
    Axiom(Vec<i64>),
    /// A clause the solver claims to have derived (must be RUP).
    Derive(Vec<i64>),
    /// A clause the solver discarded (must be active).
    Delete(Vec<i64>),
    /// Start of one instance's solve.
    SolveBegin {
        /// Caller-chosen instance number (fault sequence index).
        index: usize,
        /// The assumptions of this solve, as DIMACS literals.
        assumptions: Vec<i64>,
    },
    /// End of one instance's solve with the claimed verdict.
    SolveEnd {
        /// The solver's claim.
        verdict: Verdict,
        /// The claimed model when `verdict` is `Sat` (`model[v-1]` is
        /// variable `v`).
        model: Option<Vec<bool>>,
    },
    /// The solver took a shortcut this auditor cannot re-derive (e.g. a
    /// cache-served UNSAT verdict); the instance is reported as
    /// uncertified with this reason instead of silently passing.
    Uncertified {
        /// Human-readable reason.
        reason: String,
    },
}

/// How one instance fared under the audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceStatus {
    /// Verdict independently re-derived.
    Certified,
    /// No claim checked, with an explicit reason (abort, cache shortcut).
    Uncertified {
        /// Why no certificate exists.
        reason: String,
    },
    /// A check failed: the proof or model is wrong.
    Failed {
        /// The first error encountered.
        error: String,
    },
}

impl fmt::Display for InstanceStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceStatus::Certified => write!(f, "certified"),
            InstanceStatus::Uncertified { reason } => write!(f, "uncertified: {reason}"),
            InstanceStatus::Failed { error } => write!(f, "failed: {error}"),
        }
    }
}

/// One instance's audit outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceAudit {
    /// The `SolveBegin` index (fault sequence number).
    pub index: usize,
    /// The solver's claimed verdict.
    pub verdict: Verdict,
    /// The audit's classification.
    pub status: InstanceStatus,
}

/// The audit of one whole proof stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamAudit {
    /// Per-instance outcomes, in stream order.
    pub instances: Vec<InstanceAudit>,
    /// Derivation steps RUP-checked.
    pub steps_checked: usize,
    /// Axiom clauses recorded.
    pub axioms: usize,
    /// Deletion steps applied.
    pub deletions: usize,
    /// Errors outside any instance bracket (malformed stream).
    pub stray_errors: Vec<String>,
}

impl StreamAudit {
    /// Instances whose verdict was independently re-derived.
    pub fn certified(&self) -> usize {
        self.instances
            .iter()
            .filter(|i| i.status == InstanceStatus::Certified)
            .count()
    }

    /// Instances explicitly reported without a certificate.
    pub fn uncertified(&self) -> usize {
        self.instances
            .iter()
            .filter(|i| matches!(i.status, InstanceStatus::Uncertified { .. }))
            .count()
    }

    /// Instances where a proof or model check failed.
    pub fn failed(&self) -> usize {
        self.instances
            .iter()
            .filter(|i| matches!(i.status, InstanceStatus::Failed { .. }))
            .count()
    }

    /// Whether the stream certifies cleanly: no failed instance and no
    /// stray errors. (Uncertified instances are allowed — they are
    /// explicitly reported, and the caller decides whether to accept.)
    pub fn ok(&self) -> bool {
        self.failed() == 0 && self.stray_errors.is_empty()
    }
}

/// Replays `events` through a fresh [`Checker`] and classifies every
/// instance. See the module docs for the certification rules.
pub fn audit_stream(events: &[Event]) -> StreamAudit {
    let mut audit = StreamAudit::default();
    let mut checker = Checker::new();
    let mut axioms: Vec<Vec<i64>> = Vec::new();
    // Per-instance state between SolveBegin and SolveEnd.
    let mut open: Option<(usize, Vec<i64>)> = None;
    let mut last_derive: Option<Vec<i64>> = None;
    let mut instance_error: Option<String> = None;
    let mut uncertified_reason: Option<String> = None;

    let note_error = |err: String,
                      open: &Option<(usize, Vec<i64>)>,
                      instance_error: &mut Option<String>,
                      audit: &mut StreamAudit| {
        if open.is_some() {
            instance_error.get_or_insert(err);
        } else {
            audit.stray_errors.push(err);
        }
    };

    for event in events {
        match event {
            Event::Reset => {
                if open.is_some() {
                    note_error(
                        "reset inside an instance bracket".to_string(),
                        &open,
                        &mut instance_error,
                        &mut audit,
                    );
                }
                checker = Checker::new();
                axioms.clear();
            }
            Event::Axiom(lits) => match checker.add_axiom(lits) {
                Ok(()) => {
                    audit.axioms += 1;
                    axioms.push(lits.clone());
                }
                Err(e) => note_error(
                    format!("axiom {lits:?}: {e}"),
                    &open,
                    &mut instance_error,
                    &mut audit,
                ),
            },
            Event::Derive(lits) => {
                audit.steps_checked += 1;
                match checker.check_and_add(lits) {
                    Ok(()) => last_derive = Some(lits.clone()),
                    Err(e) => note_error(e.to_string(), &open, &mut instance_error, &mut audit),
                }
            }
            Event::Delete(lits) => {
                audit.deletions += 1;
                if let Err(e) = checker.check_delete(lits) {
                    note_error(e.to_string(), &open, &mut instance_error, &mut audit);
                }
            }
            Event::SolveBegin { index, assumptions } => {
                if open.is_some() {
                    audit
                        .stray_errors
                        .push(format!("instance {index} opened inside another bracket"));
                }
                open = Some((*index, assumptions.clone()));
                last_derive = None;
                instance_error = None;
                uncertified_reason = None;
            }
            Event::Uncertified { reason } => {
                if open.is_some() {
                    uncertified_reason.get_or_insert(reason.clone());
                } else {
                    audit
                        .stray_errors
                        .push(format!("uncertified marker outside a bracket: {reason}"));
                }
            }
            Event::SolveEnd { verdict, model } => {
                let Some((index, assumptions)) = open.take() else {
                    audit
                        .stray_errors
                        .push("solve end without a matching begin".to_string());
                    continue;
                };
                let status = classify(
                    *verdict,
                    model.as_deref(),
                    &assumptions,
                    &axioms,
                    &checker,
                    last_derive.as_deref(),
                    instance_error.take(),
                    uncertified_reason.take(),
                );
                audit.instances.push(InstanceAudit {
                    index,
                    verdict: *verdict,
                    status,
                });
            }
        }
    }
    if open.is_some() {
        audit
            .stray_errors
            .push("stream ended inside an instance bracket".to_string());
    }
    audit
}

/// Applies the certification rules to one closed instance.
#[allow(clippy::too_many_arguments)]
fn classify(
    verdict: Verdict,
    model: Option<&[bool]>,
    assumptions: &[i64],
    axioms: &[Vec<i64>],
    checker: &Checker,
    last_derive: Option<&[i64]>,
    instance_error: Option<String>,
    uncertified_reason: Option<String>,
) -> InstanceStatus {
    if let Some(error) = instance_error {
        return InstanceStatus::Failed { error };
    }
    if let Some(reason) = uncertified_reason {
        return InstanceStatus::Uncertified { reason };
    }
    match verdict {
        Verdict::Aborted => InstanceStatus::Uncertified {
            reason: "aborted: resource budget exhausted".to_string(),
        },
        Verdict::Sat => match model {
            None => InstanceStatus::Failed {
                error: "sat verdict without a model".to_string(),
            },
            Some(m) => match model_satisfies(axioms, assumptions, m) {
                Ok(()) => InstanceStatus::Certified,
                Err(e) => InstanceStatus::Failed {
                    error: e.to_string(),
                },
            },
        },
        Verdict::Unsat => {
            if checker.has_empty() {
                return InstanceStatus::Certified;
            }
            let Some(last) = last_derive else {
                return InstanceStatus::Failed {
                    error: "unsat verdict without a culminating derivation".to_string(),
                };
            };
            let covered = last.iter().all(|l| assumptions.contains(&-l));
            if covered {
                InstanceStatus::Certified
            } else {
                InstanceStatus::Failed {
                    error: format!(
                        "final derivation {last:?} is not a subset of the negated assumptions"
                    ),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(index: usize, assumptions: Vec<i64>) -> Event {
        Event::SolveBegin { index, assumptions }
    }

    fn end(verdict: Verdict, model: Option<Vec<bool>>) -> Event {
        Event::SolveEnd { verdict, model }
    }

    #[test]
    fn certified_unsat_via_empty_clause() {
        let events = vec![
            Event::Axiom(vec![1]),
            Event::Axiom(vec![-1, 2]),
            Event::Axiom(vec![-2]),
            solve(0, vec![]),
            Event::Derive(vec![]),
            end(Verdict::Unsat, None),
        ];
        let audit = audit_stream(&events);
        assert!(audit.ok(), "{audit:?}");
        assert_eq!(audit.certified(), 1);
    }

    #[test]
    fn certified_unsat_under_assumptions() {
        let events = vec![
            Event::Axiom(vec![-1, 2]),
            Event::Axiom(vec![-2, -3]),
            solve(7, vec![1, 3]),
            Event::Derive(vec![-1, -3]),
            end(Verdict::Unsat, None),
        ];
        let audit = audit_stream(&events);
        assert!(audit.ok(), "{audit:?}");
        assert_eq!(audit.instances[0].index, 7);
        assert_eq!(audit.instances[0].status, InstanceStatus::Certified);
    }

    #[test]
    fn certified_sat_with_model() {
        let events = vec![
            Event::Axiom(vec![1, 2]),
            solve(0, vec![-1]),
            end(Verdict::Sat, Some(vec![false, true])),
        ];
        let audit = audit_stream(&events);
        assert_eq!(audit.certified(), 1, "{audit:?}");
    }

    #[test]
    fn bad_model_fails() {
        let events = vec![
            Event::Axiom(vec![1, 2]),
            solve(0, vec![]),
            end(Verdict::Sat, Some(vec![false, false])),
        ];
        let audit = audit_stream(&events);
        assert_eq!(audit.failed(), 1);
        assert!(!audit.ok());
    }

    #[test]
    fn bogus_derivation_fails() {
        let events = vec![
            Event::Axiom(vec![1, 2]),
            solve(0, vec![]),
            Event::Derive(vec![1]),
            end(Verdict::Unsat, None),
        ];
        let audit = audit_stream(&events);
        assert_eq!(audit.failed(), 1);
    }

    #[test]
    fn unsat_without_derivation_fails() {
        let events = vec![
            Event::Axiom(vec![1, 2]),
            solve(0, vec![]),
            end(Verdict::Unsat, None),
        ];
        let audit = audit_stream(&events);
        assert_eq!(audit.failed(), 1);
    }

    #[test]
    fn uncertified_marker_and_abort_are_reported_not_failed() {
        let events = vec![
            Event::Axiom(vec![1]),
            solve(0, vec![]),
            Event::Uncertified {
                reason: "cache-served verdict".to_string(),
            },
            end(Verdict::Unsat, None),
            solve(1, vec![]),
            end(Verdict::Aborted, None),
        ];
        let audit = audit_stream(&events);
        assert_eq!(audit.uncertified(), 2);
        assert_eq!(audit.failed(), 0);
        assert!(audit.ok(), "uncertified is reported, not a failure");
    }

    #[test]
    fn reset_isolates_instances() {
        // Fault A's axioms must not leak into fault B after a reset.
        let events = vec![
            Event::Reset,
            Event::Axiom(vec![1]),
            Event::Axiom(vec![-1]),
            solve(0, vec![]),
            Event::Derive(vec![]),
            end(Verdict::Unsat, None),
            Event::Reset,
            Event::Axiom(vec![1]),
            solve(1, vec![]),
            end(Verdict::Sat, Some(vec![true])),
        ];
        let audit = audit_stream(&events);
        assert!(audit.ok(), "{audit:?}");
        assert_eq!(audit.certified(), 2);
    }

    #[test]
    fn incremental_derivations_persist_across_instances() {
        // The unit derived in instance 0 remains usable by instance 1's
        // refutation — the warm-solver scenario.
        let events = vec![
            Event::Axiom(vec![1, 2]),
            Event::Axiom(vec![1, -2]),
            solve(0, vec![]),
            Event::Derive(vec![1]),
            end(Verdict::Sat, Some(vec![true, true])),
            Event::Axiom(vec![-1, 3]),
            solve(1, vec![-3]),
            Event::Derive(vec![3]),
            end(Verdict::Unsat, None),
        ];
        let audit = audit_stream(&events);
        assert!(audit.ok(), "{audit:?}");
        assert_eq!(audit.certified(), 2);
    }

    #[test]
    fn malformed_brackets_are_stray_errors() {
        let audit = audit_stream(&[end(Verdict::Unsat, None)]);
        assert!(!audit.ok());
        let audit = audit_stream(&[solve(0, vec![])]);
        assert!(!audit.ok());
    }
}
