//! SAT-model evaluation over the original clauses.
//!
//! A claimed model is only trusted against the clauses the *caller*
//! recorded (the axioms of the instance), never against anything the
//! solver derived — derived clauses are consequences only if the
//! derivation was sound, which is exactly what is in question.

use std::fmt;

/// Why a claimed model failed evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A clause had no true literal under the model.
    UnsatisfiedClause {
        /// Index of the clause in the caller's list.
        index: usize,
        /// The clause itself.
        clause: Vec<i64>,
    },
    /// An assumption literal is false under the model.
    UnsatisfiedAssumption {
        /// The violated assumption.
        lit: i64,
    },
    /// A literal references a variable beyond the model's length.
    ModelTooShort {
        /// The out-of-range literal.
        lit: i64,
    },
    /// A clause or assumption contained the literal `0`.
    ZeroLiteral,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnsatisfiedClause { index, clause } => {
                write!(f, "model falsifies clause #{index} {clause:?}")
            }
            ModelError::UnsatisfiedAssumption { lit } => {
                write!(f, "model falsifies assumption {lit}")
            }
            ModelError::ModelTooShort { lit } => {
                write!(f, "literal {lit} is beyond the model's variables")
            }
            ModelError::ZeroLiteral => write!(f, "clause contains the literal 0"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Truth of literal `l` under `model` (`model[v-1]` is variable `v`).
fn lit_true(l: i64, model: &[bool]) -> Result<bool, ModelError> {
    if l == 0 {
        return Err(ModelError::ZeroLiteral);
    }
    let v = l.unsigned_abs() as usize;
    if v > model.len() {
        return Err(ModelError::ModelTooShort { lit: l });
    }
    Ok((l > 0) == model[v - 1])
}

/// Checks that `model` satisfies every clause and every assumption.
pub fn model_satisfies(
    clauses: &[Vec<i64>],
    assumptions: &[i64],
    model: &[bool],
) -> Result<(), ModelError> {
    for &a in assumptions {
        if !lit_true(a, model)? {
            return Err(ModelError::UnsatisfiedAssumption { lit: a });
        }
    }
    for (index, clause) in clauses.iter().enumerate() {
        let mut sat = false;
        for &l in clause {
            if lit_true(l, model)? {
                sat = true;
                break;
            }
        }
        if !sat {
            return Err(ModelError::UnsatisfiedClause {
                index,
                clause: clause.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_model() {
        let clauses = vec![vec![1, 2], vec![-1, 3]];
        model_satisfies(&clauses, &[3], &[true, false, true]).expect("model holds");
    }

    #[test]
    fn rejects_violated_clause() {
        let clauses = vec![vec![1, 2]];
        assert!(matches!(
            model_satisfies(&clauses, &[], &[false, false]),
            Err(ModelError::UnsatisfiedClause { index: 0, .. })
        ));
    }

    #[test]
    fn rejects_violated_assumption() {
        assert!(matches!(
            model_satisfies(&[], &[-1], &[true]),
            Err(ModelError::UnsatisfiedAssumption { lit: -1 })
        ));
    }

    #[test]
    fn rejects_short_model_and_zero() {
        assert!(matches!(
            model_satisfies(&[vec![2]], &[], &[true]),
            Err(ModelError::ModelTooShort { lit: 2 })
        ));
        assert!(matches!(
            model_satisfies(&[vec![0]], &[], &[true]),
            Err(ModelError::ZeroLiteral)
        ));
    }
}
