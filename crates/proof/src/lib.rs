//! Independent certification of SAT/UNSAT verdicts.
//!
//! The paper's Figure-1 argument counts ~11k per-fault verdicts, and the
//! redundant-fault claims are exactly the UNSAT miters of Lemma 4.2 — so
//! every number downstream of the campaign rests on trusting solver
//! answers. This crate re-derives those answers from scratch:
//!
//! - [`drat`] parses and renders the textual DRAT proof format (clause
//!   additions plus `d`-prefixed deletions over DIMACS literals).
//! - [`checker`] is a stateful RUP (reverse unit propagation) checker
//!   with deletion handling: every added clause must follow from the
//!   current database by unit propagation alone.
//! - [`model`] evaluates a claimed SAT model against the original
//!   clauses and the assumptions of the solve.
//! - [`stream`] replays a whole campaign's proof event stream — axioms,
//!   derivations, deletions, per-instance solve brackets — and produces
//!   a [`StreamAudit`] classifying every instance as certified,
//!   uncertified (with a reason), or failed.
//! - [`audit`] aggregates per-circuit stream audits into the
//!   `results/audit.json` report the `audit` bench bin writes.
//!
//! # Independence
//!
//! This crate deliberately depends on **nothing** from the workspace —
//! in particular not on `atpg-easy-sat` or `atpg-easy-cnf`. Clauses are
//! plain `Vec<i64>` of DIMACS literals (positive/negative non-zero
//! integers), models are plain `Vec<bool>`. A bug shared between solver
//! and checker would defeat certification; the only shared artifact is
//! the integer encoding of a literal.

#![warn(clippy::unwrap_used)]

pub mod audit;
pub mod checker;
pub mod drat;
pub mod model;
pub mod stream;

pub use audit::{Audit, CircuitAudit};
pub use checker::{CheckError, Checker};
pub use drat::{parse_drat, render_drat, DratParseError, Step};
pub use model::{model_satisfies, ModelError};
pub use stream::{audit_stream, Event, InstanceAudit, InstanceStatus, StreamAudit, Verdict};
