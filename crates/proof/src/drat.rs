//! The textual DRAT proof format.
//!
//! One step per line: a clause addition is the clause's DIMACS literals
//! terminated by `0`; a deletion is the same prefixed with `d`. Comment
//! lines starting with `c` are skipped. This is the format standard
//! checkers (`drat-trim` and friends) consume, which keeps the proofs
//! this workspace emits externally re-checkable.

use std::fmt;

/// One DRAT step: add or delete one clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// `true` for a `d`-prefixed deletion step.
    pub delete: bool,
    /// The clause's DIMACS literals (non-zero, sign = polarity).
    pub lits: Vec<i64>,
}

/// Why a DRAT text failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DratParseError {
    /// A token was neither an integer, `d`, nor a comment.
    BadToken {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A step did not end with the `0` terminator.
    UnterminatedStep {
        /// 1-based line number.
        line: usize,
    },
    /// A `d` appeared in the middle of a step.
    MisplacedDelete {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for DratParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DratParseError::BadToken { line, token } => {
                write!(f, "line {line}: bad token `{token}`")
            }
            DratParseError::UnterminatedStep { line } => {
                write!(f, "line {line}: step missing its 0 terminator")
            }
            DratParseError::MisplacedDelete { line } => {
                write!(f, "line {line}: `d` must start a step")
            }
        }
    }
}

impl std::error::Error for DratParseError {}

/// Parses a DRAT proof text into steps.
pub fn parse_drat(text: &str) -> Result<Vec<Step>, DratParseError> {
    let mut steps = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        let mut delete = false;
        let mut lits = Vec::new();
        let mut terminated = false;
        for (k, tok) in trimmed.split_whitespace().enumerate() {
            if terminated {
                return Err(DratParseError::BadToken {
                    line,
                    token: tok.to_string(),
                });
            }
            if tok == "d" {
                if k != 0 {
                    return Err(DratParseError::MisplacedDelete { line });
                }
                delete = true;
                continue;
            }
            match tok.parse::<i64>() {
                Ok(0) => terminated = true,
                Ok(l) => lits.push(l),
                Err(_) => {
                    return Err(DratParseError::BadToken {
                        line,
                        token: tok.to_string(),
                    })
                }
            }
        }
        if !terminated {
            return Err(DratParseError::UnterminatedStep { line });
        }
        steps.push(Step { delete, lits });
    }
    Ok(steps)
}

/// Renders steps back into DRAT text (one step per line).
pub fn render_drat(steps: &[Step]) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    for s in steps {
        if s.delete {
            out.push_str("d ");
        }
        for l in &s.lits {
            let _ = write!(out, "{l} ");
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let steps = vec![
            Step {
                delete: false,
                lits: vec![1, -2, 3],
            },
            Step {
                delete: true,
                lits: vec![-1, 2],
            },
            Step {
                delete: false,
                lits: vec![],
            },
        ];
        let text = render_drat(&steps);
        assert_eq!(parse_drat(&text).expect("round trip"), steps);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let steps = parse_drat("c hello\n\n1 2 0\nc bye\nd 1 0\n").expect("parses");
        assert_eq!(steps.len(), 2);
        assert!(!steps[0].delete);
        assert!(steps[1].delete);
    }

    #[test]
    fn errors_are_typed() {
        assert!(matches!(
            parse_drat("1 2"),
            Err(DratParseError::UnterminatedStep { line: 1 })
        ));
        assert!(matches!(
            parse_drat("1 x 0"),
            Err(DratParseError::BadToken { line: 1, .. })
        ));
        assert!(matches!(
            parse_drat("1 d 2 0"),
            Err(DratParseError::MisplacedDelete { line: 1 })
        ));
        assert!(matches!(
            parse_drat("1 0 2"),
            Err(DratParseError::BadToken { line: 1, .. })
        ));
    }
}
