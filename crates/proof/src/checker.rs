//! A stateful DRAT checker: reverse unit propagation (RUP) with deletion
//! handling.
//!
//! The checker maintains a clause database over DIMACS literals. Axioms
//! (the original formula) enter unchecked; every derived clause must be
//! RUP — asserting the negation of its literals and unit-propagating
//! over the active database must yield a conflict — before it joins the
//! database. Deletions must name a currently-active clause (as a literal
//! set), so a proof can never "delete first, add later" its way past the
//! check.
//!
//! Propagation is occurrence-list based: per check, the negated
//! candidate literals and the active unit clauses seed a trail, and each
//! falsified literal visits only the clauses that contain it. The trail
//! is undone after every check, so checks are independent.

use std::collections::HashMap;
use std::fmt;

/// Largest variable index the checker accepts. Real campaign instances
/// stay far below this; the cap keeps corrupt input (a literal of
/// `±10^18`) from driving occurrence-list allocation.
pub const MAX_VAR: i64 = 1 << 23;

/// Why a proof step was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A clause contained the literal `0` (reserved as terminator).
    ZeroLiteral,
    /// A literal's variable exceeds [`MAX_VAR`].
    LiteralOutOfRange {
        /// The offending literal.
        lit: i64,
    },
    /// A derived clause is not RUP over the active database.
    NotRup {
        /// The rejected clause (normalized).
        clause: Vec<i64>,
    },
    /// A deletion named a clause that is not active in the database.
    UnknownDeletion {
        /// The unmatched clause (normalized).
        clause: Vec<i64>,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::ZeroLiteral => write!(f, "clause contains the literal 0"),
            CheckError::LiteralOutOfRange { lit } => {
                write!(f, "literal {lit} exceeds the variable cap")
            }
            CheckError::NotRup { clause } => {
                write!(f, "clause {clause:?} is not RUP over the database")
            }
            CheckError::UnknownDeletion { clause } => {
                write!(f, "deletion of {clause:?}, which is not active")
            }
        }
    }
}

impl std::error::Error for CheckError {}

struct Slot {
    lits: Vec<i64>,
    active: bool,
}

/// The stateful proof checker. See the module docs.
#[derive(Default)]
pub struct Checker {
    slots: Vec<Slot>,
    /// Normalized literal set → active slot ids carrying exactly it.
    index: HashMap<Vec<i64>, Vec<usize>>,
    /// Literal code (`2·(var−1) + sign`) → slots containing the literal.
    /// Entries go stale on deletion; `Slot::active` filters at use.
    occ: Vec<Vec<usize>>,
    /// Variable truth values during a check: 0 free, 1 true, −1 false.
    assign: Vec<i8>,
    /// Slots that were ever single-literal (filtered for liveness at use).
    unit_slots: Vec<usize>,
    /// Number of currently-active empty clauses.
    empty_active: usize,
    /// Latched once any empty clause (axiom or derived) entered the
    /// database: unsatisfiability, once established, is permanent.
    empty_ever: bool,
    num_active: usize,
}

fn code(l: i64) -> usize {
    let var = l.unsigned_abs() as usize - 1;
    2 * var + usize::from(l < 0)
}

impl Checker {
    /// An empty checker with no clauses.
    pub fn new() -> Self {
        Checker::default()
    }

    /// Number of active clauses.
    pub fn num_active(&self) -> usize {
        self.num_active
    }

    /// Whether an empty clause ever entered the database — i.e. whether
    /// unconditional unsatisfiability has been established.
    pub fn has_empty(&self) -> bool {
        self.empty_ever
    }

    /// Validates, sorts and deduplicates a clause.
    fn normalize(&self, lits: &[i64]) -> Result<Vec<i64>, CheckError> {
        let mut out = Vec::with_capacity(lits.len());
        for &l in lits {
            if l == 0 {
                return Err(CheckError::ZeroLiteral);
            }
            if l.abs() > MAX_VAR {
                return Err(CheckError::LiteralOutOfRange { lit: l });
            }
            out.push(l);
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    fn grow_for(&mut self, lits: &[i64]) {
        let max_var = lits.iter().map(|l| l.unsigned_abs() as usize).max();
        if let Some(v) = max_var {
            if self.assign.len() < v {
                self.assign.resize(v, 0);
                self.occ.resize(2 * v, Vec::new());
            }
        }
    }

    fn insert(&mut self, lits: Vec<i64>) {
        self.grow_for(&lits);
        let si = self.slots.len();
        if lits.is_empty() {
            self.empty_active += 1;
            self.empty_ever = true;
        }
        if lits.len() == 1 {
            self.unit_slots.push(si);
        }
        for &l in &lits {
            self.occ[code(l)].push(si);
        }
        self.index.entry(lits.clone()).or_default().push(si);
        self.slots.push(Slot { lits, active: true });
        self.num_active += 1;
    }

    /// Adds an original-formula clause without any check.
    pub fn add_axiom(&mut self, lits: &[i64]) -> Result<(), CheckError> {
        let lits = self.normalize(lits)?;
        self.insert(lits);
        Ok(())
    }

    /// Checks that `lits` is RUP over the active database, then adds it.
    pub fn check_and_add(&mut self, lits: &[i64]) -> Result<(), CheckError> {
        let lits = self.normalize(lits)?;
        self.grow_for(&lits);
        if !self.is_rup(&lits) {
            return Err(CheckError::NotRup { clause: lits });
        }
        self.insert(lits);
        Ok(())
    }

    /// Deletes one active clause equal (as a literal set) to `lits`.
    pub fn check_delete(&mut self, lits: &[i64]) -> Result<(), CheckError> {
        let lits = self.normalize(lits)?;
        let Some(bucket) = self.index.get_mut(&lits) else {
            return Err(CheckError::UnknownDeletion { clause: lits });
        };
        let Some(si) = bucket.pop() else {
            return Err(CheckError::UnknownDeletion { clause: lits });
        };
        if bucket.is_empty() {
            self.index.remove(&lits);
        }
        self.slots[si].active = false;
        self.num_active -= 1;
        if lits.is_empty() {
            self.empty_active -= 1;
        }
        Ok(())
    }

    /// Asserts literal `l` as true. Returns `false` on contradiction
    /// with the current assignment (which means: conflict found).
    fn assume(&mut self, l: i64, trail: &mut Vec<i64>) -> bool {
        let v = l.unsigned_abs() as usize - 1;
        let want: i8 = if l > 0 { 1 } else { -1 };
        match self.assign[v] {
            0 => {
                self.assign[v] = want;
                trail.push(l);
                true
            }
            a => a == want,
        }
    }

    fn lit_value(&self, l: i64) -> i8 {
        let v = l.unsigned_abs() as usize - 1;
        let a = self.assign[v];
        if l > 0 {
            a
        } else {
            -a
        }
    }

    /// Whether asserting the negation of `lits` and unit-propagating
    /// over the active database yields a conflict.
    fn is_rup(&mut self, lits: &[i64]) -> bool {
        let mut trail: Vec<i64> = Vec::new();
        let mut conflict = self.empty_active > 0;
        if !conflict {
            for &l in lits {
                if !self.assume(-l, &mut trail) {
                    conflict = true;
                    break;
                }
            }
        }
        // Seed with active unit clauses.
        if !conflict {
            for k in 0..self.unit_slots.len() {
                let si = self.unit_slots[k];
                if !self.slots[si].active {
                    continue;
                }
                let u = self.slots[si].lits[0];
                if !self.assume(u, &mut trail) {
                    conflict = true;
                    break;
                }
            }
        }
        // Propagate to fixpoint.
        let mut qhead = 0;
        'prop: while !conflict && qhead < trail.len() {
            let t = trail[qhead];
            qhead += 1;
            // Clauses containing ¬t may have become unit or empty.
            let c = code(-t);
            let mut k = 0;
            while k < self.occ[c].len() {
                let si = self.occ[c][k];
                k += 1;
                if !self.slots[si].active {
                    continue;
                }
                let mut unassigned: Option<i64> = None;
                let mut open = 0usize;
                let mut satisfied = false;
                for &q in &self.slots[si].lits {
                    match self.lit_value(q) {
                        1 => {
                            satisfied = true;
                            break;
                        }
                        0 => {
                            open += 1;
                            unassigned = Some(q);
                            if open > 1 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if satisfied || open > 1 {
                    continue;
                }
                match unassigned {
                    None => {
                        conflict = true;
                        break 'prop;
                    }
                    Some(u) => {
                        let v = u.unsigned_abs() as usize - 1;
                        self.assign[v] = if u > 0 { 1 } else { -1 };
                        trail.push(u);
                    }
                }
            }
        }
        for l in trail {
            self.assign[l.unsigned_abs() as usize - 1] = 0;
        }
        conflict
    }
}

impl fmt::Debug for Checker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checker")
            .field("active", &self.num_active)
            .field("total", &self.slots.len())
            .field("empty_ever", &self.empty_ever)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learnt_unit_is_rup() {
        // (x1 ∨ x2)(x1 ∨ ¬x2) ⊢ (x1) by RUP.
        let mut c = Checker::new();
        c.add_axiom(&[1, 2]).expect("axiom");
        c.add_axiom(&[1, -2]).expect("axiom");
        c.check_and_add(&[1]).expect("x1 is RUP");
        assert!(!c.has_empty());
    }

    #[test]
    fn non_consequence_rejected() {
        let mut c = Checker::new();
        c.add_axiom(&[1, 2]).expect("axiom");
        assert!(matches!(
            c.check_and_add(&[1]),
            Err(CheckError::NotRup { .. })
        ));
    }

    #[test]
    fn refutation_reaches_empty_clause() {
        // x1, x1→x2, ¬x2: refutable. The RUP derivation of the empty
        // clause propagates the units to a conflict.
        let mut c = Checker::new();
        c.add_axiom(&[1]).expect("axiom");
        c.add_axiom(&[-1, 2]).expect("axiom");
        c.add_axiom(&[-2]).expect("axiom");
        c.check_and_add(&[]).expect("empty clause is RUP");
        assert!(c.has_empty());
    }

    #[test]
    fn deletion_then_dependent_check_fails() {
        let mut c = Checker::new();
        c.add_axiom(&[1, 2]).expect("axiom");
        c.add_axiom(&[1, -2]).expect("axiom");
        c.check_delete(&[2, 1]).expect("set-match deletion");
        assert!(
            matches!(c.check_and_add(&[1]), Err(CheckError::NotRup { .. })),
            "deleting a premise must break the derivation"
        );
    }

    #[test]
    fn unknown_deletion_rejected() {
        let mut c = Checker::new();
        c.add_axiom(&[1, 2]).expect("axiom");
        assert!(matches!(
            c.check_delete(&[1, 3]),
            Err(CheckError::UnknownDeletion { .. })
        ));
        // Deleting the same clause twice: second must fail.
        c.check_delete(&[1, 2]).expect("first deletion");
        assert!(matches!(
            c.check_delete(&[1, 2]),
            Err(CheckError::UnknownDeletion { .. })
        ));
    }

    #[test]
    fn duplicate_clauses_delete_independently() {
        let mut c = Checker::new();
        c.add_axiom(&[1, 2]).expect("axiom");
        c.add_axiom(&[2, 1]).expect("axiom (same set)");
        c.check_delete(&[1, 2]).expect("one copy");
        c.check_delete(&[1, 2]).expect("other copy");
        assert_eq!(c.num_active(), 0);
    }

    #[test]
    fn tautological_candidate_accepted() {
        let mut c = Checker::new();
        c.add_axiom(&[1]).expect("axiom");
        c.check_and_add(&[2, -2]).expect("tautologies are valid");
    }

    #[test]
    fn zero_and_out_of_range_literals_rejected() {
        let mut c = Checker::new();
        assert!(matches!(c.add_axiom(&[1, 0]), Err(CheckError::ZeroLiteral)));
        assert!(matches!(
            c.add_axiom(&[MAX_VAR + 1]),
            Err(CheckError::LiteralOutOfRange { .. })
        ));
        assert!(matches!(
            c.check_and_add(&[i64::MIN + 1]),
            Err(CheckError::LiteralOutOfRange { .. })
        ));
    }

    #[test]
    fn checks_are_independent() {
        // A failed check must leave no assignment residue behind.
        let mut c = Checker::new();
        c.add_axiom(&[1, 2]).expect("axiom");
        c.add_axiom(&[-1, 2]).expect("axiom");
        assert!(c.check_and_add(&[3]).is_err());
        c.check_and_add(&[2]).expect("x2 is RUP");
    }

    #[test]
    fn assumption_failure_clause_is_plain_rup() {
        // DB: ¬a ∨ x, ¬x ∨ ¬b. Assuming a and b fails; the solver emits
        // the clause (¬a ∨ ¬b), which must check as ordinary RUP.
        let mut c = Checker::new();
        c.add_axiom(&[-1, 2]).expect("axiom");
        c.add_axiom(&[-2, -3]).expect("axiom");
        c.check_and_add(&[-1, -3])
            .expect("failing-subset clause is RUP");
    }
}
