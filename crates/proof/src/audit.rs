//! Campaign-level audit reports: what `results/audit.json` contains.
//!
//! One [`CircuitAudit`] summarizes the stream audits of one circuit's
//! campaign (several streams in the parallel/incremental case — one per
//! worker); an [`Audit`] aggregates circuits into the suite-level report
//! with a single pass/fail answer. JSON rendering is hand-rolled flat
//! JSON, like every other report in this workspace — no dependencies.

use std::fmt::Write as _;

use crate::stream::{InstanceStatus, StreamAudit};

/// The audit summary of one circuit's campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CircuitAudit {
    /// Circuit name.
    pub circuit: String,
    /// Solver engine label (`from-scratch` / `incremental`).
    pub engine: String,
    /// Instances whose verdict was independently re-derived.
    pub certified: usize,
    /// Instances explicitly reported without a certificate, with reasons.
    pub uncertified: Vec<(usize, String)>,
    /// Instances whose proof or model check failed, with errors.
    pub failed: Vec<(usize, String)>,
    /// Total RUP steps checked across all streams.
    pub steps_checked: usize,
    /// Total axioms recorded.
    pub axioms: usize,
    /// Total deletions applied.
    pub deletions: usize,
    /// Stream-structure errors (malformed brackets etc.).
    pub stray_errors: Vec<String>,
}

impl CircuitAudit {
    /// Starts an empty audit for `circuit` under `engine`.
    pub fn new(circuit: impl Into<String>, engine: impl Into<String>) -> Self {
        CircuitAudit {
            circuit: circuit.into(),
            engine: engine.into(),
            ..CircuitAudit::default()
        }
    }

    /// Folds one stream's audit into this circuit's totals.
    pub fn absorb(&mut self, stream: &StreamAudit) {
        for inst in &stream.instances {
            match &inst.status {
                InstanceStatus::Certified => self.certified += 1,
                InstanceStatus::Uncertified { reason } => {
                    self.uncertified.push((inst.index, reason.clone()))
                }
                InstanceStatus::Failed { error } => self.failed.push((inst.index, error.clone())),
            }
        }
        self.steps_checked += stream.steps_checked;
        self.axioms += stream.axioms;
        self.deletions += stream.deletions;
        self.stray_errors
            .extend(stream.stray_errors.iter().cloned());
    }

    /// Total instances audited.
    pub fn instances(&self) -> usize {
        self.certified + self.uncertified.len() + self.failed.len()
    }

    /// Whether every instance certified with no failures, no stray
    /// errors, and no uncertified stragglers.
    pub fn fully_certified(&self) -> bool {
        self.failed.is_empty() && self.uncertified.is_empty() && self.stray_errors.is_empty()
    }
}

/// The suite-level audit: one entry per circuit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Audit {
    /// Per-circuit audits, in suite order.
    pub circuits: Vec<CircuitAudit>,
}

impl Audit {
    /// Totals across all circuits: (certified, uncertified, failed).
    pub fn totals(&self) -> (usize, usize, usize) {
        self.circuits.iter().fold((0, 0, 0), |(c, u, f), a| {
            (c + a.certified, u + a.uncertified.len(), f + a.failed.len())
        })
    }

    /// Whether the whole suite passes: zero failed checks and zero
    /// stream errors. Uncertified instances are tolerated only because
    /// they are explicitly listed in the report.
    pub fn ok(&self) -> bool {
        self.circuits
            .iter()
            .all(|a| a.failed.is_empty() && a.stray_errors.is_empty())
    }

    /// Whether every single instance certified (the acceptance bar for
    /// the committed `results/audit.json`).
    pub fn fully_certified(&self) -> bool {
        self.circuits.iter().all(CircuitAudit::fully_certified)
    }

    /// Renders the report as pretty-printed JSON with stable keys.
    pub fn render_json(&self) -> String {
        let (certified, uncertified, failed) = self.totals();
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"certified\": {certified},");
        let _ = writeln!(out, "  \"uncertified\": {uncertified},");
        let _ = writeln!(out, "  \"failed\": {failed},");
        let _ = writeln!(out, "  \"ok\": {},", self.ok());
        let _ = writeln!(out, "  \"fully_certified\": {},", self.fully_certified());
        out.push_str("  \"circuits\": [\n");
        for (i, c) in self.circuits.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(
                out,
                "\"circuit\": \"{}\", \"engine\": \"{}\", \"instances\": {}, \
                 \"certified\": {}, \"steps_checked\": {}, \"axioms\": {}, \
                 \"deletions\": {}",
                json_escape(&c.circuit),
                json_escape(&c.engine),
                c.instances(),
                c.certified,
                c.steps_checked,
                c.axioms,
                c.deletions,
            );
            let _ = write!(out, ", \"uncertified\": [");
            for (k, (idx, reason)) in c.uncertified.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"instance\": {idx}, \"reason\": \"{}\"}}",
                    json_escape(reason)
                );
            }
            let _ = write!(out, "], \"failed\": [");
            for (k, (idx, error)) in c.failed.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"instance\": {idx}, \"error\": \"{}\"}}",
                    json_escape(error)
                );
            }
            let _ = write!(out, "], \"stream_errors\": [");
            for (k, e) in c.stray_errors.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\"", json_escape(e));
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.circuits.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{InstanceAudit, Verdict};

    fn stream_with(statuses: Vec<InstanceStatus>) -> StreamAudit {
        StreamAudit {
            instances: statuses
                .into_iter()
                .enumerate()
                .map(|(index, status)| InstanceAudit {
                    index,
                    verdict: Verdict::Unsat,
                    status,
                })
                .collect(),
            steps_checked: 5,
            axioms: 3,
            deletions: 1,
            stray_errors: Vec::new(),
        }
    }

    #[test]
    fn absorb_and_totals() {
        let mut c = CircuitAudit::new("c17", "incremental");
        c.absorb(&stream_with(vec![
            InstanceStatus::Certified,
            InstanceStatus::Uncertified {
                reason: "aborted".to_string(),
            },
            InstanceStatus::Failed {
                error: "bad".to_string(),
            },
        ]));
        assert_eq!(c.instances(), 3);
        assert!(!c.fully_certified());
        let audit = Audit { circuits: vec![c] };
        assert_eq!(audit.totals(), (1, 1, 1));
        assert!(!audit.ok());
    }

    #[test]
    fn json_is_balanced_and_escaped() {
        let mut c = CircuitAudit::new("c\"x\"", "from-scratch");
        c.absorb(&stream_with(vec![InstanceStatus::Certified]));
        let audit = Audit { circuits: vec![c] };
        let json = audit.render_json();
        assert!(json.contains("\\\"x\\\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"fully_certified\": true"));
    }
}
