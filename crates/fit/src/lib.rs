//! Least-squares curve fitting and model selection.
//!
//! The paper (Section 5.2.2) fits three candidate models to the cut-width
//! versus circuit-size scatter — linear `y = a·x + b`, logarithmic
//! `y = a·ln(x) + b` and power `y = a·x^b` — and reports that the
//! logarithmic curve "proved to give the best least-squares fit". This
//! crate reproduces that methodology: [`fit_all`] fits the three models
//! and [`best_fit`] selects the lowest-SSE one.
//!
//! # Example
//!
//! ```
//! use atpg_easy_fit::{best_fit, Model};
//!
//! // Perfectly logarithmic data.
//! let pts: Vec<(f64, f64)> = (1..200)
//!     .map(|i| (i as f64, 3.0 * (i as f64).ln() + 1.0))
//!     .collect();
//! let fit = best_fit(&pts).expect("enough points");
//! assert_eq!(fit.model, Model::Logarithmic);
//! ```

use std::fmt;

/// The candidate model families of the paper's Section 5.2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// `y = a·x + b`
    Linear,
    /// `y = a·ln(x) + b`
    Logarithmic,
    /// `y = a·x^b` (fit on log–log axes)
    Power,
}

impl Model {
    /// All candidate models, in a fixed order.
    pub const ALL: [Model; 3] = [Model::Linear, Model::Logarithmic, Model::Power];
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Model::Linear => write!(f, "linear"),
            Model::Logarithmic => write!(f, "log"),
            Model::Power => write!(f, "power"),
        }
    }
}

/// A fitted curve: the model family, its two parameters, and its
/// goodness-of-fit on the input data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Model family.
    pub model: Model,
    /// The multiplicative / slope parameter `a`.
    pub a: f64,
    /// The offset / exponent parameter `b`.
    pub b: f64,
    /// Sum of squared residuals in the original `y` space.
    pub sse: f64,
    /// Coefficient of determination in the original `y` space.
    pub r_squared: f64,
}

impl Fit {
    /// Evaluates the fitted curve at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x <= 0` for logarithmic or power models.
    pub fn predict(&self, x: f64) -> f64 {
        match self.model {
            Model::Linear => self.a * x + self.b,
            Model::Logarithmic => {
                assert!(x > 0.0, "logarithm needs positive x");
                self.a * x.ln() + self.b
            }
            Model::Power => {
                assert!(x > 0.0, "power fit needs positive x");
                self.a * x.powf(self.b)
            }
        }
    }
}

impl fmt::Display for Fit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.model {
            Model::Linear => write!(f, "y = {:.4}·x + {:.4}", self.a, self.b),
            Model::Logarithmic => write!(f, "y = {:.4}·ln(x) + {:.4}", self.a, self.b),
            Model::Power => write!(f, "y = {:.4}·x^{:.4}", self.a, self.b),
        }?;
        write!(f, "  (SSE {:.3}, R² {:.4})", self.sse, self.r_squared)
    }
}

/// Ordinary least squares on transformed coordinates, returning `(a, b)`
/// for `v = a·u + b`.
fn ols(uv: impl Iterator<Item = (f64, f64)> + Clone) -> Option<(f64, f64)> {
    let n = uv.clone().count() as f64;
    if n < 2.0 {
        return None;
    }
    let (mut su, mut sv, mut suu, mut suv) = (0.0, 0.0, 0.0, 0.0);
    for (u, v) in uv {
        su += u;
        sv += v;
        suu += u * u;
        suv += u * v;
    }
    let denom = n * suu - su * su;
    if denom.abs() < 1e-12 {
        return None;
    }
    let a = (n * suv - su * sv) / denom;
    let b = (sv - a * su) / n;
    Some((a, b))
}

fn goodness(points: &[(f64, f64)], predict: impl Fn(f64) -> f64) -> (f64, f64) {
    let mean = points.iter().map(|p| p.1).sum::<f64>() / points.len() as f64;
    let mut sse = 0.0;
    let mut sst = 0.0;
    for &(x, y) in points {
        let r = y - predict(x);
        sse += r * r;
        sst += (y - mean) * (y - mean);
    }
    let r2 = if sst < 1e-12 { 1.0 } else { 1.0 - sse / sst };
    (sse, r2)
}

/// Fits one model family to the data.
///
/// Logarithmic and power fits ignore points with `x ≤ 0` (and `y ≤ 0` for
/// power); returns `None` if fewer than two usable points remain or the
/// data is degenerate (zero variance in the regressor).
pub fn fit_model(points: &[(f64, f64)], model: Model) -> Option<Fit> {
    let (a, b) = match model {
        Model::Linear => ols(points.iter().copied())?,
        Model::Logarithmic => {
            let t = points
                .iter()
                .filter(|p| p.0 > 0.0)
                .map(|&(x, y)| (x.ln(), y))
                .collect::<Vec<_>>();
            ols(t.iter().copied())?
        }
        Model::Power => {
            let t = points
                .iter()
                .filter(|p| p.0 > 0.0 && p.1 > 0.0)
                .map(|&(x, y)| (x.ln(), y.ln()))
                .collect::<Vec<_>>();
            // v = ln y = b·ln x + ln a
            let (slope, intercept) = ols(t.iter().copied())?;
            let fit_a = intercept.exp();
            let (sse, r2) = goodness(points, |x| fit_a * x.powf(slope));
            return Some(Fit {
                model,
                a: fit_a,
                b: slope,
                sse,
                r_squared: r2,
            });
        }
    };
    let predict = move |x: f64| match model {
        Model::Linear => a * x + b,
        Model::Logarithmic => a * x.max(f64::MIN_POSITIVE).ln() + b,
        Model::Power => unreachable!("handled above"),
    };
    let (sse, r2) = goodness(points, predict);
    Some(Fit {
        model,
        a,
        b,
        sse,
        r_squared: r2,
    })
}

/// Fits all three model families (models that cannot be fit are omitted).
pub fn fit_all(points: &[(f64, f64)]) -> Vec<Fit> {
    Model::ALL
        .iter()
        .filter_map(|&m| fit_model(points, m))
        .collect()
}

/// The lowest-SSE fit among the three families, or `None` when no family
/// fits (fewer than two usable points).
pub fn best_fit(points: &[(f64, f64)]) -> Option<Fit> {
    fit_all(points)
        .into_iter()
        .min_by(|a, b| a.sse.partial_cmp(&b.sse).expect("SSE is finite"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(f: impl Fn(f64) -> f64, n: usize) -> Vec<(f64, f64)> {
        (1..=n).map(|i| (i as f64, f(i as f64))).collect()
    }

    #[test]
    fn recovers_linear() {
        let pts = synth(|x| 2.5 * x - 3.0, 100);
        let fit = fit_model(&pts, Model::Linear).unwrap();
        assert!((fit.a - 2.5).abs() < 1e-9);
        assert!((fit.b + 3.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
        assert_eq!(best_fit(&pts).unwrap().model, Model::Linear);
    }

    #[test]
    fn recovers_logarithmic() {
        let pts = synth(|x| 4.0 * x.ln() + 1.5, 200);
        let fit = fit_model(&pts, Model::Logarithmic).unwrap();
        assert!((fit.a - 4.0).abs() < 1e-9);
        assert!((fit.b - 1.5).abs() < 1e-9);
        assert_eq!(best_fit(&pts).unwrap().model, Model::Logarithmic);
    }

    #[test]
    fn recovers_power() {
        let pts = synth(|x| 0.5 * x.powf(1.7), 100);
        let fit = fit_model(&pts, Model::Power).unwrap();
        assert!((fit.a - 0.5).abs() < 1e-6, "{fit}");
        assert!((fit.b - 1.7).abs() < 1e-9);
        assert_eq!(best_fit(&pts).unwrap().model, Model::Power);
    }

    #[test]
    fn log_beats_linear_and_power_on_noisy_log_data() {
        // Deterministic pseudo-noise on a log curve — the Figure-8 shape.
        let pts: Vec<(f64, f64)> = (2..500)
            .map(|i| {
                let x = i as f64;
                let noise = ((i * 2654435761u64 as usize) % 100) as f64 / 100.0 - 0.5;
                (x, 3.0 * x.ln() + 2.0 + noise)
            })
            .collect();
        assert_eq!(best_fit(&pts).unwrap().model, Model::Logarithmic);
    }

    #[test]
    fn predict_matches_formula() {
        let fit = Fit {
            model: Model::Power,
            a: 2.0,
            b: 0.5,
            sse: 0.0,
            r_squared: 1.0,
        };
        assert!((fit.predict(16.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_data_returns_none() {
        assert!(fit_model(&[(1.0, 1.0)], Model::Linear).is_none());
        assert!(fit_model(&[(2.0, 1.0), (2.0, 3.0)], Model::Linear).is_none());
        assert!(best_fit(&[]).is_none());
    }

    #[test]
    fn nonpositive_points_filtered_for_log_models() {
        let mut pts = synth(|x| 2.0 * x.ln(), 50);
        pts.push((0.0, 100.0));
        pts.push((-5.0, 3.0));
        let fit = fit_model(&pts, Model::Logarithmic).unwrap();
        assert!((fit.a - 2.0).abs() < 1.0, "filtered fit stays close: {fit}");
    }

    #[test]
    fn display_formats() {
        let pts = synth(|x| x, 10);
        let fit = fit_model(&pts, Model::Linear).unwrap();
        assert!(fit.to_string().contains("y = "));
        assert!(Model::Logarithmic.to_string() == "log");
    }
}
