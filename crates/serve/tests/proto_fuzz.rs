//! Protocol robustness under adversarial input: the daemon must answer
//! every malformed line with a *typed* error response and keep serving —
//! never panic, never wedge the connection, never kill a worker.
//!
//! Each property drives random garbage through a real in-process server
//! (real scheduler, real workers, real framing) and then proves
//! liveness by round-tripping a `ping` on the same connection. Every
//! receive carries a timeout, so a hang is a test failure, not a stuck
//! CI job.

use std::time::Duration;

use atpg_easy_circuits::suite;
use atpg_easy_netlist::parser::bench;
use atpg_easy_serve::{
    CampaignOptions, ErrorCode, PipeClient, Request, Response, ServeConfig, Server, Submission,
};
use proptest::prelude::*;

/// Every receive is bounded: a protocol hang fails fast.
const RECV_TIMEOUT: Duration = Duration::from_secs(10);

fn small_server() -> Server {
    Server::start(ServeConfig {
        workers: 2,
        capacity: 16,
        quantum: 4,
        ..ServeConfig::default()
    })
}

fn client(server: &Server) -> PipeClient {
    let mut c = PipeClient::connect(server);
    c.set_recv_timeout(Some(RECV_TIMEOUT));
    c
}

/// The bundled c17 as wire-ready bench text.
fn c17_text() -> String {
    bench::write(&suite::c17()).expect("c17 renders")
}

/// Drains responses until the liveness `pong`, requiring every line on
/// the way to be a well-formed protocol response.
fn drain_to_pong(c: &mut PipeClient) -> Vec<Response> {
    let mut seen = Vec::new();
    loop {
        let r = c.recv().expect("well-formed response before the timeout");
        if matches!(r, Response::Pong) {
            return seen;
        }
        seen.push(r);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary bytes — truncated fragments, binary noise, invalid
    /// UTF-8, stray newlines — never panic the daemon and never wedge
    /// the connection: a `ping` sent afterwards still gets its `pong`,
    /// and everything the server said in between parses as a typed
    /// response.
    #[test]
    fn garbage_bytes_never_panic_or_wedge(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let server = small_server();
        let mut c = client(&server);
        c.send_bytes(&bytes).unwrap();
        // Terminate any dangling fragment so the ping below frames
        // cleanly, then prove liveness.
        c.send_bytes(b"\n").unwrap();
        c.send(&Request::Ping).unwrap();
        for r in drain_to_pong(&mut c) {
            prop_assert!(
                matches!(r, Response::Error { .. }),
                "garbage must only ever produce typed errors, got {r:?}"
            );
        }
    }

    /// Truncating a *valid* campaign request at any byte boundary yields
    /// a typed protocol error (never `internal`, never silence), and the
    /// connection keeps serving.
    #[test]
    fn truncated_requests_get_typed_errors(cut in 0usize..1000) {
        let line = Request::Campaign {
            id: "trunc".into(),
            netlist: c17_text(),
            options: CampaignOptions::default(),
        }
        .render();
        let mut cut = cut % line.len();
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        let server = small_server();
        let mut c = client(&server);
        c.send_raw(&line[..cut]).unwrap();
        c.send(&Request::Ping).unwrap();
        let before_pong = drain_to_pong(&mut c);
        if cut == 0 {
            prop_assert!(before_pong.is_empty(), "a blank line is silently skipped");
        } else {
            prop_assert_eq!(before_pong.len(), 1);
            let Response::Error { code, .. } = &before_pong[0] else {
                panic!("expected an error, got {:?}", before_pong[0]);
            };
            prop_assert!(
                matches!(code, ErrorCode::Json | ErrorCode::UnknownType | ErrorCode::MissingField | ErrorCode::BadField),
                "truncation is a *protocol* error, got {code:?}"
            );
        }
    }

    /// Invalid UTF-8 in a frame is reported as `utf8`, not `json`, and
    /// does not poison subsequent frames.
    #[test]
    fn invalid_utf8_is_a_typed_error(
        prefix in prop::collection::vec(97u8..123, 0usize..10),
        pick in 0usize..4,
    ) {
        const BAD: [&[u8]; 4] = [&[0xff], &[0xc3, 0x28], &[0xe2, 0x82], &[0xf0, 0x9f, 0x92]];
        let server = small_server();
        let mut c = client(&server);
        let mut line = prefix;
        line.extend_from_slice(BAD[pick]);
        line.push(b'\n');
        c.send_bytes(&line).unwrap();
        c.send(&Request::Ping).unwrap();
        let before_pong = drain_to_pong(&mut c);
        prop_assert_eq!(before_pong.len(), 1);
        prop_assert!(
            matches!(&before_pong[0], Response::Error { code: ErrorCode::Utf8, .. }),
            "expected a utf8 error, got {:?}",
            before_pong[0]
        );
    }

    /// A netlist beyond the server's cap is refused with `oversize`
    /// *before* parsing or admission — the in-flight window is untouched.
    #[test]
    fn oversized_netlists_are_refused(extra in 1usize..2048) {
        let server = Server::start(ServeConfig {
            workers: 1,
            max_netlist_bytes: 256,
            ..ServeConfig::default()
        });
        let mut c = client(&server);
        let netlist = "x".repeat(256 + extra);
        let sub = c
            .run_campaign("big", &netlist, CampaignOptions::default())
            .unwrap();
        let Submission::Rejected(err) = sub else {
            panic!("oversize netlist must be rejected, got {sub:?}");
        };
        prop_assert_eq!(err.code, ErrorCode::Oversize);
        prop_assert_eq!(server.stats().active, 0);
    }

    /// A line beyond the byte cap answers `line_too_long` and the framer
    /// resynchronizes at the next newline: the next request still works.
    #[test]
    fn overlong_lines_resync(len in 513usize..4096) {
        let server = Server::start(ServeConfig {
            workers: 1,
            max_line_bytes: 512,
            ..ServeConfig::default()
        });
        let mut c = client(&server);
        c.send_raw(&"x".repeat(len)).unwrap();
        c.send(&Request::Ping).unwrap();
        let before_pong = drain_to_pong(&mut c);
        prop_assert_eq!(before_pong.len(), 1);
        prop_assert!(
            matches!(&before_pong[0], Response::Error { code: ErrorCode::LineTooLong, .. }),
            "expected line_too_long, got {:?}",
            before_pong[0]
        );
    }

    /// A request delivered in arbitrary chunk splits (interleaved
    /// frames from the transport's point of view) reassembles and runs
    /// exactly like one delivered whole.
    #[test]
    fn chunked_delivery_reassembles(splits in prop::collection::vec(1usize..50, 0..8)) {
        let line = format!(
            "{}\n",
            Request::Campaign {
                id: "chunked".into(),
                netlist: c17_text(),
                options: CampaignOptions::default(),
            }
            .render()
        );
        let server = small_server();
        let mut c = client(&server);
        let bytes = line.as_bytes();
        let mut at = 0;
        for s in splits {
            let end = (at + s).min(bytes.len());
            c.send_bytes(&bytes[at..end]).unwrap();
            at = end;
        }
        c.send_bytes(&bytes[at..]).unwrap();
        let sub = c.collect("chunked").unwrap();
        let Submission::Completed(outcome) = sub else {
            panic!("chunked campaign must complete, got {sub:?}");
        };
        prop_assert_eq!(outcome.verdicts.len() as u64, outcome.faults);
    }
}

/// Two campaigns interleaved on one connection both stream to clean
/// terminal lines, and a malformed line between them harms neither.
#[test]
fn interleaved_campaigns_share_a_connection() {
    let server = small_server();
    let mut c = client(&server);
    let netlist = c17_text();
    for id in ["a", "b"] {
        c.send(&Request::Campaign {
            id: id.into(),
            netlist: netlist.clone(),
            options: CampaignOptions::default(),
        })
        .unwrap();
    }
    c.send_raw("{\"type\":\"no-such-request\"}").unwrap();
    let Submission::Completed(a) = c.collect("a").unwrap() else {
        panic!("campaign a must complete")
    };
    let Submission::Completed(b) = c.collect("b").unwrap() else {
        panic!("campaign b must complete")
    };
    assert_eq!(a.verdicts.len() as u64, a.faults);
    assert_eq!(b.verdicts.len() as u64, b.faults);
    assert_eq!(a.detection_report(), b.detection_report());
}

/// A netlist the builder rejects — here an undriven net, caught at
/// parse/validate — is a typed `bad_field` error plus
/// `done status=failed`, not a worker death: a fresh campaign on the
/// same server still runs. (A netlist that parses but flunks the lint
/// preflight would surface as `preflight` through the same path; with
/// the default lint config every structural error is already a parse
/// error, so the wire test pins the reachable variant.)
#[test]
fn build_failures_are_typed_and_workers_survive() {
    let server = small_server();
    let mut c = client(&server);
    let sub = c
        .run_campaign(
            "bad",
            "INPUT(1)\nOUTPUT(3)\n3 = AND(1, 2)\n",
            CampaignOptions::default(),
        )
        .unwrap();
    let Submission::Completed(outcome) = sub else {
        panic!("build failure still terminates with done, got {sub:?}");
    };
    assert_eq!(outcome.done.status, atpg_easy_serve::DoneStatus::Failed);
    assert!(
        outcome.errors.iter().any(|e| e.code == ErrorCode::BadField),
        "expected a bad_field error, got {:?}",
        outcome.errors
    );
    assert!(
        outcome.verdicts.is_empty(),
        "no verdicts for a failed build"
    );
    // The worker survived: a fresh campaign on the same server runs.
    let sub = c
        .run_campaign("good", &c17_text(), CampaignOptions::default())
        .unwrap();
    assert!(
        matches!(sub, Submission::Completed(o) if o.done.status == atpg_easy_serve::DoneStatus::Ok)
    );
}
