//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One JSON object per line, flat (no nesting), with string, unsigned
//! integer and boolean values only — the same hand-rolled no-serde
//! discipline as `obs::trace`, extended with booleans for the campaign
//! option flags. The parser is total: every malformed input maps to a
//! typed [`ProtoError`] with a stable machine-readable code, never a
//! panic — the protocol robustness proptests pin this.
//!
//! Requests (client → server):
//!
//! | `type`     | fields                                                  |
//! |------------|---------------------------------------------------------|
//! | `campaign` | `id`, `netlist` (ISCAS-89 bench text), option fields    |
//! | `cancel`   | `id`                                                    |
//! | `ping`     | —                                                       |
//! | `stats`    | —                                                       |
//!
//! Responses (server → client) are described on [`Response`].

use atpg_easy_atpg::{AtpgConfig, SolverChoice};
use atpg_easy_sat::Limits;

/// Default cap on one request line (netlists ride inside a line).
pub const DEFAULT_MAX_LINE_BYTES: usize = 4 << 20;

/// Default cap on the `netlist` field of a campaign request.
pub const DEFAULT_MAX_NETLIST_BYTES: usize = 1 << 20;

/// Stable machine-readable error codes carried by `error` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not a flat JSON object of strings/integers/booleans.
    Json,
    /// The line is not valid UTF-8.
    Utf8,
    /// The line exceeds the server's line cap.
    LineTooLong,
    /// The `type` field is missing or names no known request.
    UnknownType,
    /// A required field is absent.
    MissingField,
    /// A field is present but has the wrong type or an invalid value.
    BadField,
    /// The netlist exceeds the server's netlist cap.
    Oversize,
    /// The netlist failed the ATPG preflight lint.
    Preflight,
    /// A cancel names a request id this connection never submitted (or
    /// one that already finished).
    UnknownId,
    /// A campaign reuses an id that is still in flight on this
    /// connection.
    DuplicateId,
    /// The campaign died inside the engine (a bug shield: workers never
    /// crash on one request's behalf).
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Json => "json",
            ErrorCode::Utf8 => "utf8",
            ErrorCode::LineTooLong => "line_too_long",
            ErrorCode::UnknownType => "unknown_type",
            ErrorCode::MissingField => "missing_field",
            ErrorCode::BadField => "bad_field",
            ErrorCode::Oversize => "oversize",
            ErrorCode::Preflight => "preflight",
            ErrorCode::UnknownId => "unknown_id",
            ErrorCode::DuplicateId => "duplicate_id",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire spelling back (client side).
    pub fn from_wire(s: &str) -> Option<Self> {
        Some(match s {
            "json" => ErrorCode::Json,
            "utf8" => ErrorCode::Utf8,
            "line_too_long" => ErrorCode::LineTooLong,
            "unknown_type" => ErrorCode::UnknownType,
            "missing_field" => ErrorCode::MissingField,
            "bad_field" => ErrorCode::BadField,
            "oversize" => ErrorCode::Oversize,
            "preflight" => ErrorCode::Preflight,
            "unknown_id" => ErrorCode::UnknownId,
            "duplicate_id" => ErrorCode::DuplicateId,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A typed protocol failure: code plus human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail (free text, may change).
    pub msg: String,
}

impl ProtoError {
    /// A new error.
    pub fn new(code: ErrorCode, msg: impl Into<String>) -> Self {
        ProtoError {
            code,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.msg)
    }
}

impl std::error::Error for ProtoError {}

/// One value of a flat JSON object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A non-negative integer.
    Num(u64),
    /// A boolean.
    Bool(bool),
}

/// Parses one line as a flat JSON object (`{"k":"v","n":3,"b":true}`).
/// Nested objects/arrays, floats, negative numbers and `null` are
/// rejected with [`ErrorCode::Json`]; duplicate keys keep the last
/// occurrence.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, ProtoError> {
    // Byte-oriented scanner: verdict streams parse one of these per
    // fault on the client, so strings without escapes (all of them, in
    // practice) must bulk-copy instead of pushing char by char. Slicing
    // on the matched bytes is UTF-8-safe — every delimiter tested is
    // ASCII, and multi-byte sequences contain no bytes < 0x80.
    let bad = |msg: &str| ProtoError::new(ErrorCode::Json, msg.to_string());
    let b = line.as_bytes();
    let mut i = 0usize;
    let mut fields: Vec<(String, Value)> = Vec::new();

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn parse_string(line: &str, i: &mut usize) -> Result<String, ProtoError> {
        let bad = |msg: &str| ProtoError::new(ErrorCode::Json, msg.to_string());
        let b = line.as_bytes();
        if b.get(*i) != Some(&b'"') {
            return Err(bad("expected string"));
        }
        *i += 1;
        let start = *i;
        let mut j = *i;
        while j < b.len() {
            match b[j] {
                b'"' => {
                    // Fast path: no escapes — one bulk copy.
                    let s = line[start..j].to_string();
                    *i = j + 1;
                    return Ok(s);
                }
                b'\\' => break,
                c if c < 0x20 => return Err(bad("raw control character")),
                _ => j += 1,
            }
        }
        if j >= b.len() {
            return Err(bad("unterminated string"));
        }
        // Escape path: seed with the clean prefix, then decode.
        let mut s = String::with_capacity(j - start + 16);
        s.push_str(&line[start..j]);
        *i = j;
        loop {
            match b.get(*i) {
                None => return Err(bad("unterminated string")),
                Some(b'"') => {
                    *i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                *i += 1;
                                let d = b
                                    .get(*i)
                                    .and_then(|&c| (c as char).to_digit(16))
                                    .ok_or_else(|| bad("bad \\u escape"))?;
                                code = code * 16 + d;
                            }
                            s.push(char::from_u32(code).ok_or_else(|| bad("bad \\u code point"))?);
                        }
                        _ => return Err(bad("unknown escape")),
                    }
                    *i += 1;
                }
                Some(&c) if c < 0x20 => return Err(bad("raw control character")),
                Some(_) => {
                    let run = *i;
                    let mut j = *i;
                    while j < b.len() && b[j] != b'"' && b[j] != b'\\' && b[j] >= 0x20 {
                        j += 1;
                    }
                    s.push_str(&line[run..j]);
                    *i = j;
                }
            }
        }
    }

    skip_ws(b, &mut i);
    if b.get(i) != Some(&b'{') {
        return Err(bad("expected '{'"));
    }
    i += 1;
    skip_ws(b, &mut i);
    if b.get(i) == Some(&b'}') {
        i += 1;
    } else {
        loop {
            skip_ws(b, &mut i);
            let key = parse_string(line, &mut i)?;
            skip_ws(b, &mut i);
            if b.get(i) != Some(&b':') {
                return Err(bad("expected ':'"));
            }
            i += 1;
            skip_ws(b, &mut i);
            let value = match b.get(i) {
                Some(b'"') => Value::Str(parse_string(line, &mut i)?),
                Some(b't') => {
                    if b.get(i..i + 4) != Some(b"true") {
                        return Err(bad("expected 'true'"));
                    }
                    i += 4;
                    Value::Bool(true)
                }
                Some(b'f') => {
                    if b.get(i..i + 5) != Some(b"false") {
                        return Err(bad("expected 'false'"));
                    }
                    i += 5;
                    Value::Bool(false)
                }
                Some(c) if c.is_ascii_digit() => {
                    let mut n: u64 = 0;
                    while let Some(c) = b.get(i) {
                        let Some(d) = (*c as char).to_digit(10) else {
                            break;
                        };
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(u64::from(d)))
                            .ok_or_else(|| bad("integer overflow"))?;
                        i += 1;
                    }
                    if matches!(b.get(i), Some(b'.' | b'e' | b'E')) {
                        return Err(bad("floats are not part of this protocol"));
                    }
                    Value::Num(n)
                }
                _ => return Err(bad("expected string, integer or boolean value")),
            };
            fields.retain(|(k, _)| k != &key);
            fields.push((key, value));
            skip_ws(b, &mut i);
            match b.get(i) {
                Some(b',') => {
                    i += 1;
                    continue;
                }
                Some(b'}') => {
                    i += 1;
                    break;
                }
                _ => return Err(bad("expected ',' or '}'")),
            }
        }
    }
    skip_ws(b, &mut i);
    if let Some(c) = line[i..].chars().next() {
        return Err(bad(&format!("trailing input after object: {c:?}")));
    }
    Ok(fields)
}

/// Appends `"key":"escaped-value"` (with leading comma) to `out`.
pub(crate) fn push_str(out: &mut String, key: &str, value: &str) {
    out.push(',');
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `"key":n` (with leading comma) to `out`.
pub(crate) fn push_num(out: &mut String, key: &str, value: u64) {
    out.push(',');
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

/// Appends `"key":true/false` (with leading comma) to `out`.
pub(crate) fn push_bool(out: &mut String, key: &str, value: bool) {
    out.push(',');
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(if value { "true" } else { "false" });
}

/// Campaign options carried by a `campaign` request; every field has a
/// wire default so minimal requests stay minimal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOptions {
    /// Random patterns before the SAT phase (`patterns`, default 0).
    pub patterns: u64,
    /// Random-phase seed (`seed`, default 1).
    pub seed: u64,
    /// Solver backend (`solver`: `cdcl`/`dpll`/`caching`/`simple`).
    pub solver: SolverChoice,
    /// Warm incremental solving (`incremental`, default false).
    pub incremental: bool,
    /// Static-implication redundancy pre-pass (`static_prune`).
    pub static_prune: bool,
    /// DRAT certification events + postflight audit (`certify`).
    pub certify: bool,
    /// Request-scoped `obs` instance traces (`trace`).
    pub trace: bool,
    /// Fault dropping (`dropping`, default true).
    pub dropping: bool,
    /// Structural fault collapsing (`collapse`, default true).
    pub collapse: bool,
    /// Dominance collapsing (`dominance`, default false).
    pub dominance: bool,
    /// Per-request wall deadline in milliseconds (`deadline_ms`).
    pub deadline_ms: Option<u64>,
    /// Per-instance node budget (`max_nodes`).
    pub max_nodes: Option<u64>,
    /// Per-instance conflict budget (`max_conflicts`).
    pub max_conflicts: Option<u64>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            patterns: 0,
            seed: 1,
            solver: SolverChoice::Cdcl,
            incremental: false,
            static_prune: false,
            certify: false,
            trace: false,
            dropping: true,
            collapse: true,
            dominance: false,
            deadline_ms: None,
            max_nodes: None,
            max_conflicts: None,
        }
    }
}

impl CampaignOptions {
    /// The [`AtpgConfig`] these options denote. Preflight is always on —
    /// a shared daemon must reject malformed netlists with a typed
    /// error, never panic a worker. The wall component of the request
    /// deadline is clamped in later, per scheduling quantum.
    pub fn to_config(&self) -> AtpgConfig {
        AtpgConfig {
            solver: self.solver,
            limits: Limits {
                max_nodes: self.max_nodes,
                max_conflicts: self.max_conflicts,
                max_wall: None,
            },
            fault_dropping: self.dropping,
            collapse: self.collapse,
            dominance: self.dominance,
            random_patterns: self.patterns as usize,
            seed: self.seed,
            preflight: true,
            incremental: self.incremental,
            static_prune: self.static_prune,
            ..AtpgConfig::default()
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a campaign: run ATPG on `netlist` under `options`,
    /// streaming per-fault verdicts tagged with `id`.
    Campaign {
        /// Client-chosen id echoed on every response for this campaign.
        id: String,
        /// ISCAS-89 `.bench` netlist text.
        netlist: String,
        /// Campaign options.
        options: CampaignOptions,
    },
    /// Cancel an in-flight campaign by id.
    Cancel {
        /// The id of the campaign to cancel.
        id: String,
    },
    /// Liveness probe; answered with `pong`.
    Ping,
    /// Worker-pool counters; answered with a `stats` response.
    Stats,
}

fn get_str(fields: &[(String, Value)], key: &str) -> Result<Option<String>, ProtoError> {
    match fields.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Str(s))) => Ok(Some(s.clone())),
        Some((_, v)) => Err(ProtoError::new(
            ErrorCode::BadField,
            format!("field `{key}` must be a string, got {v:?}"),
        )),
    }
}

fn get_num(fields: &[(String, Value)], key: &str) -> Result<Option<u64>, ProtoError> {
    match fields.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Num(n))) => Ok(Some(*n)),
        Some((_, v)) => Err(ProtoError::new(
            ErrorCode::BadField,
            format!("field `{key}` must be an integer, got {v:?}"),
        )),
    }
}

fn get_bool(fields: &[(String, Value)], key: &str) -> Result<Option<bool>, ProtoError> {
    match fields.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Bool(b))) => Ok(Some(*b)),
        Some((_, v)) => Err(ProtoError::new(
            ErrorCode::BadField,
            format!("field `{key}` must be a boolean, got {v:?}"),
        )),
    }
}

fn require_str(fields: &[(String, Value)], key: &str) -> Result<String, ProtoError> {
    get_str(fields, key)?
        .ok_or_else(|| ProtoError::new(ErrorCode::MissingField, format!("field `{key}` required")))
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let fields = parse_flat_object(line)?;
        let ty = require_str(&fields, "type")
            .map_err(|e| ProtoError::new(ErrorCode::UnknownType, e.msg))?;
        match ty.as_str() {
            "campaign" => {
                let id = require_str(&fields, "id")?;
                let netlist = require_str(&fields, "netlist")?;
                let mut options = CampaignOptions::default();
                if let Some(n) = get_num(&fields, "patterns")? {
                    options.patterns = n;
                }
                if let Some(n) = get_num(&fields, "seed")? {
                    options.seed = n;
                }
                if let Some(s) = get_str(&fields, "solver")? {
                    options.solver = match s.as_str() {
                        "cdcl" => SolverChoice::Cdcl,
                        "dpll" => SolverChoice::Dpll,
                        "caching" => SolverChoice::Caching,
                        "simple" => SolverChoice::Simple,
                        other => {
                            return Err(ProtoError::new(
                                ErrorCode::BadField,
                                format!("unknown solver `{other}`"),
                            ))
                        }
                    };
                }
                if let Some(b) = get_bool(&fields, "incremental")? {
                    options.incremental = b;
                }
                if let Some(b) = get_bool(&fields, "static_prune")? {
                    options.static_prune = b;
                }
                if let Some(b) = get_bool(&fields, "certify")? {
                    options.certify = b;
                }
                if let Some(b) = get_bool(&fields, "trace")? {
                    options.trace = b;
                }
                if let Some(b) = get_bool(&fields, "dropping")? {
                    options.dropping = b;
                }
                if let Some(b) = get_bool(&fields, "collapse")? {
                    options.collapse = b;
                }
                if let Some(b) = get_bool(&fields, "dominance")? {
                    options.dominance = b;
                }
                options.deadline_ms = get_num(&fields, "deadline_ms")?;
                options.max_nodes = get_num(&fields, "max_nodes")?;
                options.max_conflicts = get_num(&fields, "max_conflicts")?;
                Ok(Request::Campaign {
                    id,
                    netlist,
                    options,
                })
            }
            "cancel" => Ok(Request::Cancel {
                id: require_str(&fields, "id")?,
            }),
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            other => Err(ProtoError::new(
                ErrorCode::UnknownType,
                format!("unknown request type `{other}`"),
            )),
        }
    }

    /// Renders as one wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Request::Campaign {
                id,
                netlist,
                options,
            } => {
                let mut s = String::from("{\"type\":\"campaign\"");
                push_str(&mut s, "id", id);
                push_str(&mut s, "netlist", netlist);
                let d = CampaignOptions::default();
                if options.patterns != d.patterns {
                    push_num(&mut s, "patterns", options.patterns);
                }
                if options.seed != d.seed {
                    push_num(&mut s, "seed", options.seed);
                }
                if options.solver != d.solver {
                    let name = match options.solver {
                        SolverChoice::Cdcl => "cdcl",
                        SolverChoice::Dpll => "dpll",
                        SolverChoice::Caching => "caching",
                        SolverChoice::Simple => "simple",
                    };
                    push_str(&mut s, "solver", name);
                }
                if options.incremental != d.incremental {
                    push_bool(&mut s, "incremental", options.incremental);
                }
                if options.static_prune != d.static_prune {
                    push_bool(&mut s, "static_prune", options.static_prune);
                }
                if options.certify != d.certify {
                    push_bool(&mut s, "certify", options.certify);
                }
                if options.trace != d.trace {
                    push_bool(&mut s, "trace", options.trace);
                }
                if options.dropping != d.dropping {
                    push_bool(&mut s, "dropping", options.dropping);
                }
                if options.collapse != d.collapse {
                    push_bool(&mut s, "collapse", options.collapse);
                }
                if options.dominance != d.dominance {
                    push_bool(&mut s, "dominance", options.dominance);
                }
                if let Some(n) = options.deadline_ms {
                    push_num(&mut s, "deadline_ms", n);
                }
                if let Some(n) = options.max_nodes {
                    push_num(&mut s, "max_nodes", n);
                }
                if let Some(n) = options.max_conflicts {
                    push_num(&mut s, "max_conflicts", n);
                }
                s.push('}');
                s
            }
            Request::Cancel { id } => {
                let mut s = String::from("{\"type\":\"cancel\"");
                push_str(&mut s, "id", id);
                s.push('}');
                s
            }
            Request::Ping => "{\"type\":\"ping\"}".to_string(),
            Request::Stats => "{\"type\":\"stats\"}".to_string(),
        }
    }
}

/// Terminal status of a campaign, carried by `done`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoneStatus {
    /// Every fault got a solver/simulation verdict.
    Ok,
    /// The request deadline expired; remaining faults were flushed as
    /// `deadline` verdicts (or, when it expired before the campaign
    /// started, no verdicts were emitted at all).
    Deadline,
    /// Cancelled by request or client disconnect.
    Cancelled,
    /// The campaign failed (preflight or internal error).
    Failed,
}

impl DoneStatus {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            DoneStatus::Ok => "ok",
            DoneStatus::Deadline => "deadline",
            DoneStatus::Cancelled => "cancelled",
            DoneStatus::Failed => "failed",
        }
    }

    fn from_wire(s: &str) -> Option<Self> {
        Some(match s {
            "ok" => DoneStatus::Ok,
            "deadline" => DoneStatus::Deadline,
            "cancelled" => DoneStatus::Cancelled,
            "failed" => DoneStatus::Failed,
            _ => return None,
        })
    }
}

/// Worker-pool counters, as carried by a `stats` response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Campaigns admitted into the in-flight window.
    pub admitted: u64,
    /// Campaigns refused with a `shed` response.
    pub shed: u64,
    /// Campaigns that ran to `done status=ok`.
    pub completed: u64,
    /// Campaigns cancelled (request or disconnect).
    pub cancelled: u64,
    /// Campaigns that failed (preflight/internal).
    pub failed: u64,
    /// Campaigns terminated by their deadline.
    pub deadline_expired: u64,
    /// SAT instances solved across all campaigns.
    pub solves: u64,
    /// Driver steps executed (solved + sim-retired faults).
    pub steps: u64,
    /// Campaigns currently in flight (admitted, not yet finalized).
    pub active: u64,
    /// The configured in-flight capacity.
    pub capacity: u64,
}

/// A parsed server response. Fault verdicts stream one line per fault in
/// record order, so a client can rebuild
/// [`detection_report`](atpg_easy_atpg::CampaignResult::detection_report)
/// byte-for-byte from `verdict` lines alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The campaign entered the in-flight window.
    Accepted {
        /// Campaign id.
        id: String,
    },
    /// Backpressure: the in-flight window is full; retry later.
    Shed {
        /// Campaign id.
        id: String,
        /// Campaigns currently in flight.
        in_flight: u64,
        /// The configured window size.
        capacity: u64,
    },
    /// The campaign was built: preflight passed, faults enumerated and
    /// the random phase done. Streaming of verdicts begins.
    Start {
        /// Campaign id.
        id: String,
        /// Targeted (collapsed) faults — exactly this many `verdict`
        /// lines follow on an `ok` campaign.
        faults: u64,
        /// Faults already retired by the random-pattern phase.
        sim_detected: u64,
        /// Random vectors kept as tests by the random phase.
        random_tests: u64,
    },
    /// One fault's verdict.
    Verdict {
        /// Campaign id.
        id: String,
        /// Record index (fault order); dense from 0 on `ok` campaigns.
        seq: u64,
        /// Net index of the fault site.
        net: u64,
        /// Stuck-at value (0 or 1).
        stuck: u64,
        /// `detected` / `untestable` / `aborted` / `deadline`.
        verdict: String,
        /// The SAT-generated test vector (`'0'`/`'1'` per primary
        /// input), present only for SAT-detected faults.
        vector: Option<String>,
    },
    /// Proof bookkeeping for the preceding certified solve.
    Cert {
        /// Campaign id.
        id: String,
        /// Record index of the solve this certifies.
        seq: u64,
        /// Rendered DRAT bytes logged for the instance.
        proof_bytes: u64,
    },
    /// Postflight audit verdict of a certified campaign.
    Audit {
        /// Campaign id.
        id: String,
        /// Instances whose proof/model checked out.
        certified: u64,
        /// Instances whose certification failed.
        failed: u64,
        /// Instances that carried no certificate.
        uncertified: u64,
        /// Overall audit verdict.
        ok: bool,
    },
    /// Terminal line of a campaign; exactly one per accepted campaign.
    Done {
        /// Campaign id.
        id: String,
        /// Terminal status.
        status: DoneStatus,
        /// Faults detected (SAT + simulation).
        detected: u64,
        /// Faults proved untestable.
        untestable: u64,
        /// Faults aborted on per-instance budget.
        aborted: u64,
        /// Faults flushed as `deadline` verdicts.
        deadlined: u64,
        /// SAT instances solved for this campaign.
        solves: u64,
        /// Wall time from admission to finalization, in milliseconds.
        wall_ms: u64,
    },
    /// A typed protocol or campaign error. `id` is present when the
    /// error is scoped to one campaign.
    Error {
        /// Campaign id, when scoped.
        id: Option<String>,
        /// Stable machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        msg: String,
    },
    /// Liveness answer.
    Pong,
    /// Worker-pool counters.
    Stats(StatsSnapshot),
}

impl Response {
    /// Renders as one wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Response::Accepted { id } => {
                let mut s = String::from("{\"type\":\"accepted\"");
                push_str(&mut s, "id", id);
                s.push('}');
                s
            }
            Response::Shed {
                id,
                in_flight,
                capacity,
            } => {
                let mut s = String::from("{\"type\":\"shed\"");
                push_str(&mut s, "id", id);
                push_num(&mut s, "in_flight", *in_flight);
                push_num(&mut s, "capacity", *capacity);
                s.push('}');
                s
            }
            Response::Start {
                id,
                faults,
                sim_detected,
                random_tests,
            } => {
                let mut s = String::from("{\"type\":\"start\"");
                push_str(&mut s, "id", id);
                push_num(&mut s, "faults", *faults);
                push_num(&mut s, "sim_detected", *sim_detected);
                push_num(&mut s, "random_tests", *random_tests);
                s.push('}');
                s
            }
            Response::Verdict {
                id,
                seq,
                net,
                stuck,
                verdict,
                vector,
            } => {
                let mut s = String::from("{\"type\":\"verdict\"");
                push_str(&mut s, "id", id);
                push_num(&mut s, "seq", *seq);
                push_num(&mut s, "net", *net);
                push_num(&mut s, "stuck", *stuck);
                push_str(&mut s, "verdict", verdict);
                if let Some(v) = vector {
                    push_str(&mut s, "vector", v);
                }
                s.push('}');
                s
            }
            Response::Cert {
                id,
                seq,
                proof_bytes,
            } => {
                let mut s = String::from("{\"type\":\"cert\"");
                push_str(&mut s, "id", id);
                push_num(&mut s, "seq", *seq);
                push_num(&mut s, "proof_bytes", *proof_bytes);
                s.push('}');
                s
            }
            Response::Audit {
                id,
                certified,
                failed,
                uncertified,
                ok,
            } => {
                let mut s = String::from("{\"type\":\"audit\"");
                push_str(&mut s, "id", id);
                push_num(&mut s, "certified", *certified);
                push_num(&mut s, "failed", *failed);
                push_num(&mut s, "uncertified", *uncertified);
                push_bool(&mut s, "ok", *ok);
                s.push('}');
                s
            }
            Response::Done {
                id,
                status,
                detected,
                untestable,
                aborted,
                deadlined,
                solves,
                wall_ms,
            } => {
                let mut s = String::from("{\"type\":\"done\"");
                push_str(&mut s, "id", id);
                push_str(&mut s, "status", status.as_str());
                push_num(&mut s, "detected", *detected);
                push_num(&mut s, "untestable", *untestable);
                push_num(&mut s, "aborted", *aborted);
                push_num(&mut s, "deadlined", *deadlined);
                push_num(&mut s, "solves", *solves);
                push_num(&mut s, "wall_ms", *wall_ms);
                s.push('}');
                s
            }
            Response::Error { id, code, msg } => {
                let mut s = String::from("{\"type\":\"error\"");
                if let Some(id) = id {
                    push_str(&mut s, "id", id);
                }
                push_str(&mut s, "code", code.as_str());
                push_str(&mut s, "msg", msg);
                s.push('}');
                s
            }
            Response::Pong => "{\"type\":\"pong\"}".to_string(),
            Response::Stats(t) => {
                let mut s = String::from("{\"type\":\"stats\"");
                push_num(&mut s, "admitted", t.admitted);
                push_num(&mut s, "shed", t.shed);
                push_num(&mut s, "completed", t.completed);
                push_num(&mut s, "cancelled", t.cancelled);
                push_num(&mut s, "failed", t.failed);
                push_num(&mut s, "deadline_expired", t.deadline_expired);
                push_num(&mut s, "solves", t.solves);
                push_num(&mut s, "steps", t.steps);
                push_num(&mut s, "active", t.active);
                push_num(&mut s, "capacity", t.capacity);
                s.push('}');
                s
            }
        }
    }

    /// Parses one response line (client side).
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let fields = parse_flat_object(line)?;
        let ty = require_str(&fields, "type")
            .map_err(|e| ProtoError::new(ErrorCode::UnknownType, e.msg))?;
        let num = |key: &str| -> Result<u64, ProtoError> {
            get_num(&fields, key)?.ok_or_else(|| {
                ProtoError::new(ErrorCode::MissingField, format!("field `{key}` required"))
            })
        };
        match ty.as_str() {
            "accepted" => Ok(Response::Accepted {
                id: require_str(&fields, "id")?,
            }),
            "shed" => Ok(Response::Shed {
                id: require_str(&fields, "id")?,
                in_flight: num("in_flight")?,
                capacity: num("capacity")?,
            }),
            "start" => Ok(Response::Start {
                id: require_str(&fields, "id")?,
                faults: num("faults")?,
                sim_detected: num("sim_detected")?,
                random_tests: num("random_tests")?,
            }),
            "verdict" => Ok(Response::Verdict {
                id: require_str(&fields, "id")?,
                seq: num("seq")?,
                net: num("net")?,
                stuck: num("stuck")?,
                verdict: require_str(&fields, "verdict")?,
                vector: get_str(&fields, "vector")?,
            }),
            "cert" => Ok(Response::Cert {
                id: require_str(&fields, "id")?,
                seq: num("seq")?,
                proof_bytes: num("proof_bytes")?,
            }),
            "audit" => Ok(Response::Audit {
                id: require_str(&fields, "id")?,
                certified: num("certified")?,
                failed: num("failed")?,
                uncertified: num("uncertified")?,
                ok: get_bool(&fields, "ok")?.ok_or_else(|| {
                    ProtoError::new(ErrorCode::MissingField, "field `ok` required")
                })?,
            }),
            "done" => {
                let status = require_str(&fields, "status")?;
                Ok(Response::Done {
                    id: require_str(&fields, "id")?,
                    status: DoneStatus::from_wire(&status).ok_or_else(|| {
                        ProtoError::new(ErrorCode::BadField, format!("unknown status `{status}`"))
                    })?,
                    detected: num("detected")?,
                    untestable: num("untestable")?,
                    aborted: num("aborted")?,
                    deadlined: num("deadlined")?,
                    solves: num("solves")?,
                    wall_ms: num("wall_ms")?,
                })
            }
            "error" => {
                let code = require_str(&fields, "code")?;
                Ok(Response::Error {
                    id: get_str(&fields, "id")?,
                    code: ErrorCode::from_wire(&code).ok_or_else(|| {
                        ProtoError::new(ErrorCode::BadField, format!("unknown code `{code}`"))
                    })?,
                    msg: require_str(&fields, "msg")?,
                })
            }
            "pong" => Ok(Response::Pong),
            "stats" => Ok(Response::Stats(StatsSnapshot {
                admitted: num("admitted")?,
                shed: num("shed")?,
                completed: num("completed")?,
                cancelled: num("cancelled")?,
                failed: num("failed")?,
                deadline_expired: num("deadline_expired")?,
                solves: num("solves")?,
                steps: num("steps")?,
                active: num("active")?,
                capacity: num("capacity")?,
            })),
            other => Err(ProtoError::new(
                ErrorCode::UnknownType,
                format!("unknown response type `{other}`"),
            )),
        }
    }

    /// The error response for a [`ProtoError`], scoped to `id` when the
    /// failing request named one.
    pub fn from_proto_error(id: Option<String>, err: &ProtoError) -> Response {
        Response::Error {
            id,
            code: err.code,
            msg: err.msg.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_campaign_request_round_trips() {
        let req = Request::Campaign {
            id: "j1".into(),
            netlist: "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n".into(),
            options: CampaignOptions::default(),
        };
        let line = req.render();
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn full_campaign_request_round_trips() {
        let req = Request::Campaign {
            id: "j\"2\\weird\nid".into(),
            netlist: "INPUT(1)\nOUTPUT(2)\n2 = NOT(1)\n".into(),
            options: CampaignOptions {
                patterns: 64,
                seed: 9,
                solver: SolverChoice::Dpll,
                incremental: true,
                static_prune: true,
                certify: true,
                trace: true,
                dropping: false,
                collapse: false,
                dominance: true,
                deadline_ms: Some(1500),
                max_nodes: Some(10_000),
                max_conflicts: Some(100),
            },
        };
        let line = req.render();
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn every_response_round_trips() {
        let all = vec![
            Response::Accepted { id: "a".into() },
            Response::Shed {
                id: "a".into(),
                in_flight: 1,
                capacity: 1,
            },
            Response::Start {
                id: "a".into(),
                faults: 22,
                sim_detected: 3,
                random_tests: 2,
            },
            Response::Verdict {
                id: "a".into(),
                seq: 0,
                net: 7,
                stuck: 1,
                verdict: "detected".into(),
                vector: Some("0101".into()),
            },
            Response::Verdict {
                id: "a".into(),
                seq: 1,
                net: 8,
                stuck: 0,
                verdict: "untestable".into(),
                vector: None,
            },
            Response::Cert {
                id: "a".into(),
                seq: 1,
                proof_bytes: 99,
            },
            Response::Audit {
                id: "a".into(),
                certified: 5,
                failed: 0,
                uncertified: 0,
                ok: true,
            },
            Response::Done {
                id: "a".into(),
                status: DoneStatus::Deadline,
                detected: 4,
                untestable: 1,
                aborted: 0,
                deadlined: 17,
                solves: 5,
                wall_ms: 12,
            },
            Response::Error {
                id: None,
                code: ErrorCode::Json,
                msg: "expected '{'".into(),
            },
            Response::Error {
                id: Some("a".into()),
                code: ErrorCode::Preflight,
                msg: "N002".into(),
            },
            Response::Pong,
            Response::Stats(StatsSnapshot {
                admitted: 3,
                shed: 1,
                completed: 2,
                cancelled: 1,
                failed: 0,
                deadline_expired: 0,
                solves: 40,
                steps: 66,
                active: 0,
                capacity: 4,
            }),
        ];
        for r in all {
            let line = r.render();
            assert_eq!(Response::parse(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn malformed_lines_give_typed_errors() {
        for (line, code) in [
            ("", ErrorCode::Json),
            ("not json", ErrorCode::Json),
            ("{\"type\":\"campaign\"", ErrorCode::Json),
            ("{\"type\":3}", ErrorCode::UnknownType),
            ("{}", ErrorCode::UnknownType),
            ("{\"type\":\"warp\"}", ErrorCode::UnknownType),
            (
                "{\"type\":\"campaign\",\"id\":\"x\"}",
                ErrorCode::MissingField,
            ),
            (
                "{\"type\":\"campaign\",\"id\":7,\"netlist\":\"\"}",
                ErrorCode::BadField,
            ),
            (
                "{\"type\":\"campaign\",\"id\":\"x\",\"netlist\":\"\",\"solver\":\"brick\"}",
                ErrorCode::BadField,
            ),
            (
                "{\"type\":\"campaign\",\"id\":\"x\",\"netlist\":\"\",\"seed\":true}",
                ErrorCode::BadField,
            ),
            ("{\"type\":\"ping\",\"n\":1.5}", ErrorCode::Json),
            ("{\"type\":\"ping\",\"n\":-1}", ErrorCode::Json),
            ("{\"type\":\"ping\",\"n\":null}", ErrorCode::Json),
            ("{\"type\":\"ping\",\"n\":[1]}", ErrorCode::Json),
            ("{\"type\":\"ping\"} trailing", ErrorCode::Json),
            (
                "{\"type\":\"ping\",\"n\":99999999999999999999999}",
                ErrorCode::Json,
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, code, "line: {line} -> {err}");
        }
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let fields = parse_flat_object("{\"a\":1,\"a\":2}").unwrap();
        assert_eq!(fields, vec![("a".to_string(), Value::Num(2))]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut s = String::from("{\"type\":\"x\"");
        push_str(&mut s, "k", "a\"b\\c\nd\te\rf\u{1}g");
        s.push('}');
        let fields = parse_flat_object(&s).unwrap();
        assert_eq!(
            fields[1],
            ("k".to_string(), Value::Str("a\"b\\c\nd\te\rf\u{1}g".into()))
        );
    }
}
