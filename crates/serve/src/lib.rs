//! ATPG-as-a-service: a long-lived campaign daemon over line-delimited
//! JSON.
//!
//! The paper's thesis — ATPG instances are easy, so campaigns are
//! dominated by orchestration, not solving — makes test generation a
//! natural *service*: many small, short-lived SAT problems multiplex
//! well onto a shared worker pool. This crate is that service, built
//! entirely on the workspace (no external runtime):
//!
//! - [`proto`]: the wire protocol — flat JSONL requests/responses with
//!   typed error codes. One request line in, a stream of response lines
//!   out (`accepted`, `start`, per-fault `verdict`s, optional `cert`
//!   and `audit` for certified campaigns, terminal `done`).
//! - [`Scheduler`] (via [`Server`]): a bounded, tenant-fair,
//!   deadline-aware executor driving [`CampaignDriver`] state machines
//!   a quantum of faults at a time — admission-time shedding instead of
//!   unbounded queues, round-robin across connections, cooperative
//!   cancellation, `catch_unwind` bug shields.
//! - [`Server`]: connection plumbing over TCP or in-memory pipes; the
//!   same framing/dispatch code serves both, so tests exercise the real
//!   daemon in-process.
//! - [`Client`]: the in-process client the test harness hammers the
//!   daemon with; [`CampaignOutcome::detection_report`] reconstructs
//!   the library report byte-for-byte from the wire.
//! - [`FakeClock`]: injectable time, so deadline semantics are tested
//!   by arithmetic, not by racing real workers.
//!
//! Byte-identity contract: a campaign streamed through this daemon
//! yields the same `detection_report` as [`campaign::run`] on the same
//! netlist and configuration, at any worker count — the driver refactor
//! makes both paths literally the same loop.
//!
//! [`CampaignDriver`]: atpg_easy_atpg::CampaignDriver
//! [`campaign::run`]: atpg_easy_atpg::campaign::run
//! [`Scheduler`]: crate::sched::Scheduler

#![warn(missing_docs)]

pub mod client;
pub mod clock;
pub mod pipe;
pub mod proto;
pub(crate) mod sched;
pub mod server;

pub use client::{
    AuditLine, CampaignOutcome, Client, DoneLine, PipeClient, Submission, VerdictLine,
};
pub use clock::{Clock, FakeClock, SystemClock};
pub use pipe::{pipe, PipeReader, PipeWriter};
pub use proto::{
    CampaignOptions, DoneStatus, ErrorCode, ProtoError, Request, Response, StatsSnapshot,
};
pub use sched::{PoolStats, ServeConfig};
pub use server::Server;
