//! An in-process client for the serve protocol: the test harness's way
//! of talking to the daemon without sockets.
//!
//! [`Client`] wraps one connection (an in-memory pipe pair from
//! [`Server::connect`](crate::Server::connect), or any `Read`/`Write`
//! transport), frames requests out and responses back, and offers
//! [`Client::run_campaign`] — submit one campaign and collect its whole
//! streamed lifetime into a [`CampaignOutcome`], whose
//! [`detection_report`](CampaignOutcome::detection_report) reconstructs
//! the library's report from the wire verdicts byte-for-byte.

use std::io::{BufRead, BufReader, Read, Write};
use std::time::Duration;

use crate::pipe::{PipeReader, PipeWriter};
use crate::proto::{CampaignOptions, DoneStatus, ProtoError, Request, Response, StatsSnapshot};
use crate::Server;

/// One `verdict` line, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictLine {
    /// Record index (fault order).
    pub seq: u64,
    /// Net index of the fault site.
    pub net: u64,
    /// Stuck-at value (0 or 1).
    pub stuck: u64,
    /// `detected` / `untestable` / `redundant` / `aborted` / `deadline`.
    pub verdict: String,
    /// SAT test vector, for SAT-detected faults.
    pub vector: Option<String>,
}

/// The postflight audit line of a certified campaign, decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditLine {
    /// Instances whose proof/model checked out.
    pub certified: u64,
    /// Instances whose certification failed.
    pub failed: u64,
    /// Instances without a certificate.
    pub uncertified: u64,
    /// Overall audit verdict.
    pub ok: bool,
}

/// The terminal `done` line, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoneLine {
    /// Terminal status.
    pub status: DoneStatus,
    /// Faults detected (SAT + simulation).
    pub detected: u64,
    /// Faults proved untestable.
    pub untestable: u64,
    /// Faults aborted on budget.
    pub aborted: u64,
    /// Faults flushed as `deadline` verdicts.
    pub deadlined: u64,
    /// SAT instances solved.
    pub solves: u64,
    /// Admission-to-finalization wall time, ms.
    pub wall_ms: u64,
}

/// Everything one accepted campaign streamed back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Targeted faults announced by `start`.
    pub faults: u64,
    /// Random-phase retirements announced by `start`.
    pub sim_detected: u64,
    /// Random vectors kept as tests, announced by `start`.
    pub random_tests: u64,
    /// Every verdict, in stream order.
    pub verdicts: Vec<VerdictLine>,
    /// `(seq, proof_bytes)` for each certified solve.
    pub certs: Vec<(u64, u64)>,
    /// The audit line, for certified campaigns.
    pub audit: Option<AuditLine>,
    /// Campaign-scoped errors seen before `done` (build failures).
    pub errors: Vec<ProtoError>,
    /// The terminal line.
    pub done: DoneLine,
}

impl CampaignOutcome {
    /// Reconstructs [`CampaignResult::detection_report`]
    /// (`fault net=N saB verdict` per line) from the streamed verdicts —
    /// the byte-identity hook of the serve e2e golden test. `redundant`
    /// verdicts (statically pruned faults) render as `untestable` —
    /// exactly how the library report renders them, so a pruned wire
    /// campaign stays byte-identical to an unpruned one. `deadline`
    /// verdicts render with that label; they have no library counterpart
    /// (the library loop has no deadlines) and only appear on
    /// non-`ok` campaigns.
    ///
    /// [`CampaignResult::detection_report`]:
    ///     atpg_easy_atpg::CampaignResult::detection_report
    pub fn detection_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for v in &self.verdicts {
            let label = if v.verdict == "redundant" {
                "untestable"
            } else {
                &v.verdict
            };
            writeln!(out, "fault net={} sa{} {}", v.net, v.stuck, label)
                .expect("writing to a String cannot fail");
        }
        out
    }
}

/// What became of one submitted campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submission {
    /// Backpressure: the in-flight window was full. Retry later.
    Shed {
        /// In-flight campaigns at refusal time.
        in_flight: u64,
        /// The server's window size.
        capacity: u64,
    },
    /// Refused before admission (oversize netlist, duplicate id, ...).
    Rejected(ProtoError),
    /// Accepted and ran to a terminal `done` line.
    Completed(CampaignOutcome),
}

/// A protocol-speaking connection to a [`Server`].
pub struct Client<R: Read, W: Write> {
    reader: BufReader<R>,
    writer: W,
    /// Campaign-scoped responses received while collecting a *different*
    /// campaign; drained, in arrival order, by the [`Client::collect`]
    /// call for their id. This is what makes interleaved campaigns on
    /// one connection lossless.
    pending: Vec<Response>,
}

/// The campaign id a response is scoped to, if any.
fn response_id(r: &Response) -> Option<&str> {
    match r {
        Response::Accepted { id }
        | Response::Shed { id, .. }
        | Response::Start { id, .. }
        | Response::Verdict { id, .. }
        | Response::Cert { id, .. }
        | Response::Audit { id, .. }
        | Response::Done { id, .. } => Some(id),
        Response::Error { id, .. } => id.as_deref(),
        Response::Pong | Response::Stats(_) => None,
    }
}

/// The in-process flavor every test uses.
pub type PipeClient = Client<PipeReader, PipeWriter>;

impl PipeClient {
    /// Opens an in-process connection to `server`.
    pub fn connect(server: &Server) -> Self {
        let (tx, rx) = server.connect();
        Client::new(rx, tx)
    }

    /// Bounds every subsequent receive: a server that stops talking
    /// yields `TimedOut` errors instead of hanging the test.
    pub fn set_recv_timeout(&mut self, timeout: Option<Duration>) {
        self.reader.get_mut().set_read_timeout(timeout);
    }
}

impl<R: Read, W: Write> Client<R, W> {
    /// A client over an arbitrary transport.
    pub fn new(read: R, write: W) -> Self {
        Client {
            reader: BufReader::new(read),
            writer: write,
            pending: Vec::new(),
        }
    }

    /// Sends one request line.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        self.send_raw(&request.render())
    }

    /// Sends one raw line verbatim (the robustness tests inject garbage
    /// through this).
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Sends raw bytes verbatim — no newline appended, no UTF-8
    /// guarantee. The protocol fuzz tests drive truncated frames and
    /// invalid UTF-8 through this.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Receives and decodes the next response line. `UnexpectedEof`
    /// means the server closed the connection.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let line = self.recv_raw()?;
        Response::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response line {line:?}: {e}"),
            )
        })
    }

    /// Receives the next raw response line, without the newline.
    pub fn recv_raw(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        if line.ends_with('\n') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends a `ping` and expects the `pong`.
    pub fn ping(&mut self) -> std::io::Result<()> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected pong, got {other:?}"),
            )),
        }
    }

    /// Fetches a server stats snapshot.
    pub fn stats(&mut self) -> std::io::Result<StatsSnapshot> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(s) => Ok(s),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected stats, got {other:?}"),
            )),
        }
    }

    /// Requests cancellation of an in-flight campaign. The
    /// acknowledgement is that campaign's own `done status=cancelled`
    /// line (or an `unknown_id` error if it already finished).
    pub fn cancel(&mut self, id: &str) -> std::io::Result<()> {
        self.send(&Request::Cancel { id: id.into() })
    }

    /// Submits one campaign and drains its stream to the terminal line.
    ///
    /// Responses for *other* ids on this connection (from concurrently
    /// submitted campaigns) are skipped, so interleaved use is fine as
    /// long as someone eventually collects each campaign.
    pub fn run_campaign(
        &mut self,
        id: &str,
        netlist: &str,
        options: CampaignOptions,
    ) -> std::io::Result<Submission> {
        self.send(&Request::Campaign {
            id: id.into(),
            netlist: netlist.into(),
            options,
        })?;
        self.collect(id)
    }

    /// Drains the stream of campaign `id` (already submitted) to its
    /// terminal line.
    pub fn collect(&mut self, id: &str) -> std::io::Result<Submission> {
        let mut accepted = false;
        let mut outcome = CampaignOutcome {
            faults: 0,
            sim_detected: 0,
            random_tests: 0,
            verdicts: Vec::new(),
            certs: Vec::new(),
            audit: None,
            errors: Vec::new(),
            done: DoneLine {
                status: DoneStatus::Failed,
                detected: 0,
                untestable: 0,
                aborted: 0,
                deadlined: 0,
                solves: 0,
                wall_ms: 0,
            },
        };
        loop {
            let mine = |rid: &str| rid == id;
            // Buffered lines for this id (received while collecting
            // another campaign) come first, in arrival order; then the
            // live stream. Lines scoped to other campaigns are buffered
            // for *their* collect call, not dropped.
            let next = match self.pending.iter().position(|r| response_id(r) == Some(id)) {
                Some(at) => self.pending.remove(at),
                None => {
                    let r = self.recv()?;
                    if response_id(&r).is_some_and(|rid| rid != id) {
                        self.pending.push(r);
                        continue;
                    }
                    r
                }
            };
            match next {
                Response::Accepted { id: rid } if mine(&rid) => accepted = true,
                Response::Shed {
                    id: rid,
                    in_flight,
                    capacity,
                } if mine(&rid) => {
                    return Ok(Submission::Shed {
                        in_flight,
                        capacity,
                    })
                }
                Response::Start {
                    id: rid,
                    faults,
                    sim_detected,
                    random_tests,
                } if mine(&rid) => {
                    outcome.faults = faults;
                    outcome.sim_detected = sim_detected;
                    outcome.random_tests = random_tests;
                }
                Response::Verdict {
                    id: rid,
                    seq,
                    net,
                    stuck,
                    verdict,
                    vector,
                } if mine(&rid) => outcome.verdicts.push(VerdictLine {
                    seq,
                    net,
                    stuck,
                    verdict,
                    vector,
                }),
                Response::Cert {
                    id: rid,
                    seq,
                    proof_bytes,
                } if mine(&rid) => outcome.certs.push((seq, proof_bytes)),
                Response::Audit {
                    id: rid,
                    certified,
                    failed,
                    uncertified,
                    ok,
                } if mine(&rid) => {
                    outcome.audit = Some(AuditLine {
                        certified,
                        failed,
                        uncertified,
                        ok,
                    })
                }
                Response::Done {
                    id: rid,
                    status,
                    detected,
                    untestable,
                    aborted,
                    deadlined,
                    solves,
                    wall_ms,
                } if mine(&rid) => {
                    outcome.done = DoneLine {
                        status,
                        detected,
                        untestable,
                        aborted,
                        deadlined,
                        solves,
                        wall_ms,
                    };
                    return Ok(Submission::Completed(outcome));
                }
                Response::Error { id: rid, code, msg } if rid.as_deref() == Some(id) => {
                    let err = ProtoError::new(code, msg);
                    if accepted {
                        // Build/engine failure: a `done status=failed`
                        // follows — keep draining.
                        outcome.errors.push(err);
                    } else {
                        return Ok(Submission::Rejected(err));
                    }
                }
                // Global protocol errors, pongs, stats: not ours to
                // collect here (other campaigns' lines were buffered
                // above and never reach this match).
                _ => {}
            }
        }
    }
}

impl<R: Read, W: Write> std::fmt::Debug for Client<R, W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}
