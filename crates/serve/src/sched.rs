//! The campaign scheduler: a bounded, fair, cancellable M:N executor.
//!
//! This is the "hand-rolled epoll-free executor" of the serving layer.
//! Campaigns are not OS threads and not futures — they are
//! [`CampaignDriver`] state machines, parked in per-tenant run queues
//! and driven cooperatively by a fixed pool of worker threads, one
//! *quantum* (a small batch of faults) at a time. Everything the daemon
//! promises lives here:
//!
//! - **Bounded admission.** At most `capacity` campaigns are in flight;
//!   a request beyond that is refused with a well-formed `shed`
//!   response at admission time — explicit backpressure, not an
//!   unbounded queue.
//! - **Fair round-robin across tenants.** Each connection (tenant) has
//!   its own FIFO of runnable campaigns, and tenants take turns in a
//!   ring: after each quantum a campaign goes back to the *front* of
//!   its tenant's queue while the tenant rotates to the back of the
//!   ring (no tenant starves another). A tenant whose campaign is on a
//!   worker is *held* out of the ring, so at most one of its campaigns
//!   runs at a time — run-to-completion within a tenant, which makes
//!   per-tenant completion order equal submission order even on a
//!   multi-worker pool. A tenant that wants intra-connection
//!   parallelism opens more connections.
//! - **Small-job batching.** A quantum is `quantum` faults, so cheap
//!   campaigns finish in one slice instead of ping-ponging through the
//!   ring, while an expensive campaign cannot monopolize a worker.
//! - **Deadlines.** A request deadline is fixed at admission; between
//!   quanta the remaining budget is clamped onto the driver's
//!   [`sat::Limits`](atpg_easy_sat::Limits) wall budget, and an expired
//!   deadline flushes every pending fault as a `deadline` verdict
//!   without solving anything further.
//! - **Cancellation.** A cancel request, a client disconnect (reader
//!   EOF) or a failed response write flips a per-campaign flag that is
//!   checked between faults; the campaign finalizes as `cancelled` and
//!   its worker moves on.
//! - **Panic shielding.** Building and stepping run under
//!   `catch_unwind`: a pathological request yields a typed `internal`
//!   error for that campaign, never a dead worker.

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::Sender;
use std::time::Duration;

use atpg_easy_atpg::{CampaignDriver, DriverError, FaultOutcome};
use atpg_easy_netlist::parser::bench;
use atpg_easy_obs::{CampaignMeta, SharedSink, TraceSink};
use atpg_easy_syncx::atomic::{AtomicBool, AtomicU64, Ordering};
use atpg_easy_syncx::{Arc, Mutex};

use crate::clock::Clock;
use crate::proto::{
    CampaignOptions, DoneStatus, ErrorCode, Response, StatsSnapshot, DEFAULT_MAX_LINE_BYTES,
    DEFAULT_MAX_NETLIST_BYTES,
};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads driving campaigns.
    pub workers: usize,
    /// In-flight campaign window; admissions beyond it are shed.
    pub capacity: usize,
    /// Faults per scheduling quantum.
    pub quantum: usize,
    /// Per-line byte cap on the wire.
    pub max_line_bytes: usize,
    /// Byte cap on the `netlist` field of a campaign request.
    pub max_netlist_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            capacity: 16,
            quantum: 8,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            max_netlist_bytes: DEFAULT_MAX_NETLIST_BYTES,
        }
    }
}

/// Worker-pool counters, updated lock-free and readable at any time —
/// the deadline/cancellation tests assert worker liveness through these.
#[derive(Debug, Default)]
pub struct PoolStats {
    // ORDERING: all counters are Relaxed — they are monotone event
    // counts (plus the `active` gauge) with no data published alongside
    // them; readers only need eventually-consistent totals, and the
    // tests that assert exact values synchronize externally (they wait
    // for the jobs themselves to finish first).
    admitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    deadline_expired: AtomicU64,
    solves: AtomicU64,
    steps: AtomicU64,
    active: AtomicU64,
}

impl PoolStats {
    /// A point-in-time copy, with `capacity` stamped in from config.
    pub fn snapshot(&self, capacity: u64) -> StatsSnapshot {
        // ORDERING: Relaxed — see the struct-level note.
        StatsSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            solves: self.solves.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            capacity,
        }
    }
}

/// A campaign's progress through the executor.
enum Work {
    /// Admitted but not yet built; the first quantum parses the netlist
    /// and constructs the driver (so even building happens on a worker,
    /// not on the connection's reader thread).
    Unbuilt {
        netlist: String,
        options: CampaignOptions,
    },
    /// Built and partially run.
    Running(Box<CampaignDriver>),
}

/// One in-flight campaign.
struct Job {
    /// Scheduler-assigned id; tags the request's rows in the shared
    /// telemetry sink.
    id: u64,
    /// Owning connection.
    tenant: u64,
    /// Client-chosen request id, echoed on every response.
    req_id: String,
    /// The connection's response channel (held open until finalize).
    reply: Sender<String>,
    // ORDERING: Relaxed — the flag is a latch checked between faults;
    // no data is transferred through it, and a slightly-late observation
    // only costs one extra fault of work.
    cancelled: Arc<AtomicBool>,
    /// Absolute deadline (clock ms), fixed at admission.
    deadline_at: Option<u64>,
    /// Admission timestamp (clock ms), for `wall_ms` in `done`.
    admitted_ms: u64,
    certify: bool,
    trace: bool,
    /// Faults flushed as `deadline` verdicts.
    deadlined: u64,
    /// SAT instances solved for this campaign.
    solves: u64,
    work: Work,
}

/// Runnable-set state under the scheduler mutex.
#[derive(Default)]
struct Ready {
    /// Round-robin ring of tenants. Invariant: a tenant is in the ring
    /// exactly once iff its `runnable` queue is non-empty *and* it is
    /// not in `held`.
    ring: VecDeque<u64>,
    /// Per-tenant FIFO of runnable campaigns.
    runnable: HashMap<u64, VecDeque<Job>>,
    /// Tenants whose head-of-line campaign is currently on a worker. A
    /// held tenant is not schedulable: at most one of its campaigns runs
    /// at a time, which is what makes per-tenant completion order equal
    /// submission order even on a multi-worker pool.
    held: HashSet<u64>,
    /// Admitted, not yet finalized (includes jobs held by workers).
    in_flight: usize,
    /// Cancellation flags of every in-flight campaign, keyed by
    /// (tenant, request id) — how cancel requests and disconnects reach
    /// campaigns currently held by a worker.
    index: HashMap<(u64, String), Arc<AtomicBool>>,
    shutdown: bool,
}

/// The shared executor. One per [`Server`](crate::Server); worker
/// threads loop in [`Scheduler::worker_loop`].
pub(crate) struct Scheduler {
    ready: Mutex<Ready>,
    work_ready: std::sync::Condvar,
    pub(crate) stats: PoolStats,
    pub(crate) config: ServeConfig,
    clock: Arc<dyn Clock>,
    /// Request-scoped telemetry tee, if the daemon was started with one.
    trace_sink: Option<SharedSink>,
    next_job: AtomicU64,
}

/// What a worker decided after one scheduling slice.
enum SliceEnd {
    Requeue,
    Finalize(DoneStatus),
}

impl Scheduler {
    pub(crate) fn new(
        config: ServeConfig,
        clock: Arc<dyn Clock>,
        trace_sink: Option<SharedSink>,
    ) -> Self {
        Scheduler {
            ready: Mutex::new(Ready::default()),
            work_ready: std::sync::Condvar::new(),
            stats: PoolStats::default(),
            config,
            clock,
            trace_sink,
            next_job: AtomicU64::new(0),
        }
    }

    /// Admission control: into the in-flight window, or shed. `Some` is
    /// a refusal for the connection to write back; `None` means the
    /// campaign was admitted and its `accepted` line already streamed —
    /// queued ahead of the job becoming runnable, so it is on the wire
    /// before any worker can race a `start` past it.
    pub(crate) fn try_admit(
        &self,
        tenant: u64,
        req_id: String,
        netlist: String,
        options: CampaignOptions,
        reply: Sender<String>,
    ) -> Option<Response> {
        if netlist.len() > self.config.max_netlist_bytes {
            return Some(Response::Error {
                id: Some(req_id),
                code: ErrorCode::Oversize,
                msg: format!(
                    "netlist is {} bytes; this server accepts at most {}",
                    netlist.len(),
                    self.config.max_netlist_bytes
                ),
            });
        }
        let mut ready = self.lock_ready();
        if ready.shutdown {
            return Some(Response::Error {
                id: Some(req_id),
                code: ErrorCode::Internal,
                msg: "server is shutting down".into(),
            });
        }
        if ready.in_flight >= self.config.capacity {
            // ORDERING: Relaxed — see PoolStats.
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Some(Response::Shed {
                id: req_id,
                in_flight: ready.in_flight as u64,
                capacity: self.config.capacity as u64,
            });
        }
        let key = (tenant, req_id.clone());
        if ready.index.contains_key(&key) {
            return Some(Response::Error {
                id: Some(req_id),
                code: ErrorCode::DuplicateId,
                msg: "a campaign with this id is still in flight on this connection".into(),
            });
        }
        let cancelled = Arc::new(AtomicBool::new(false));
        ready.index.insert(key, Arc::clone(&cancelled));
        ready.in_flight += 1;
        // ORDERING: Relaxed — see PoolStats.
        self.stats.admitted.fetch_add(1, Ordering::Relaxed);
        self.stats.active.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now_ms();
        let job = Job {
            id: self.next_job.fetch_add(1, Ordering::Relaxed),
            tenant,
            req_id: req_id.clone(),
            reply,
            cancelled,
            deadline_at: options.deadline_ms.map(|d| now.saturating_add(d)),
            admitted_ms: now,
            certify: options.certify,
            trace: options.trace,
            deadlined: 0,
            solves: 0,
            work: Work::Unbuilt { netlist, options },
        };
        // The `accepted` line enters the reply queue under the ready
        // lock, strictly before the enqueue that makes the job runnable:
        // no worker can put a `start` on the wire ahead of it. A failed
        // send means the connection is already gone — admit anyway; the
        // reader's EOF path cancels the tenant and the first failed
        // flush finalizes the campaign as cancelled.
        send_line(&job.reply, &Response::Accepted { id: req_id });
        Self::enqueue(&mut ready, job, /* front = */ false);
        drop(ready);
        self.work_ready.notify_one();
        None
    }

    /// Flags one campaign for cancellation; `false` if no such id is in
    /// flight for this tenant.
    pub(crate) fn cancel(&self, tenant: u64, req_id: &str) -> bool {
        let ready = self.lock_ready();
        match ready.index.get(&(tenant, req_id.to_string())) {
            Some(flag) => {
                // ORDERING: Relaxed — see the Job.cancelled note.
                flag.store(true, Ordering::Relaxed);
                drop(ready);
                self.work_ready.notify_all();
                true
            }
            None => false,
        }
    }

    /// Flags every in-flight campaign of a tenant (client disconnect).
    pub(crate) fn cancel_tenant(&self, tenant: u64) {
        let ready = self.lock_ready();
        for ((t, _), flag) in ready.index.iter() {
            if *t == tenant {
                // ORDERING: Relaxed — see the Job.cancelled note.
                flag.store(true, Ordering::Relaxed);
            }
        }
        drop(ready);
        self.work_ready.notify_all();
    }

    /// Stops the pool: workers exit once the runnable set is drained of
    /// their current slice.
    pub(crate) fn shutdown(&self) {
        self.lock_ready().shutdown = true;
        self.work_ready.notify_all();
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot(self.config.capacity as u64)
    }

    fn lock_ready(&self) -> std::sync::MutexGuard<'_, Ready> {
        self.ready.lock().expect("scheduler mutex")
    }

    fn enqueue(ready: &mut Ready, job: Job, front: bool) {
        let tenant = job.tenant;
        let queue = ready.runnable.entry(tenant).or_default();
        let was_empty = queue.is_empty();
        if front {
            queue.push_front(job);
        } else {
            queue.push_back(job);
        }
        // A held tenant stays out of the ring; it rejoins in `release`
        // when its in-flight slice returns.
        if was_empty && !ready.held.contains(&tenant) {
            ready.ring.push_back(tenant);
        }
    }

    /// Pops the next runnable campaign, honoring the tenant ring. The
    /// tenant is marked held — not schedulable again — until the worker
    /// calls [`Scheduler::release`] for it.
    fn pop_next(ready: &mut Ready) -> Option<Job> {
        let tenant = ready.ring.pop_front()?;
        let queue = ready
            .runnable
            .get_mut(&tenant)
            .expect("ring tenants have a queue");
        let job = queue.pop_front().expect("ring tenants have jobs");
        if queue.is_empty() {
            ready.runnable.remove(&tenant);
        }
        ready.held.insert(tenant);
        Some(job)
    }

    /// Releases a tenant's hold after a slice; if campaigns queued up
    /// behind the held one, the tenant rejoins the *back* of the ring
    /// (fair rotation across tenants).
    fn release(ready: &mut Ready, tenant: u64) {
        if ready.held.remove(&tenant) && ready.runnable.get(&tenant).is_some_and(|q| !q.is_empty())
        {
            // Held implies absent from the ring, so this push is the
            // tenant's only entry.
            ready.ring.push_back(tenant);
        }
    }

    /// The worker thread body: pull a campaign, drive one slice, repeat.
    pub(crate) fn worker_loop(&self) {
        loop {
            let job = {
                let mut ready = self.lock_ready();
                loop {
                    if ready.shutdown {
                        return;
                    }
                    if let Some(job) = Self::pop_next(&mut ready) {
                        break job;
                    }
                    ready = self.work_ready.wait(ready).expect("scheduler mutex");
                }
            };
            self.run_slice(job);
        }
    }

    /// Drives `job` for one scheduling slice: build it if fresh, then up
    /// to `quantum` faults, with cancellation and deadline checks
    /// between faults.
    fn run_slice(&self, mut job: Job) {
        // ORDERING: Relaxed — see the Job.cancelled note.
        if job.cancelled.load(Ordering::Relaxed) {
            return self.finalize(job, DoneStatus::Cancelled);
        }
        if let Work::Unbuilt { .. } = job.work {
            // An already-expired deadline never builds, never solves: the
            // request finalizes with `done status=deadline` directly.
            if self.deadline_expired(&job) {
                return self.finalize(job, DoneStatus::Deadline);
            }
            if let Some(end) = self.build(&mut job) {
                return self.finalize(job, end);
            }
        }
        let end = panic::catch_unwind(AssertUnwindSafe(|| self.run_quantum(&mut job)));
        match end {
            Ok(SliceEnd::Requeue) => {
                let mut ready = self.lock_ready();
                let tenant = job.tenant;
                // Enqueue before releasing the hold: the front push must
                // not race another worker into this tenant's queue.
                Self::enqueue(&mut ready, job, /* front = */ true);
                Self::release(&mut ready, tenant);
                drop(ready);
                self.work_ready.notify_one();
            }
            Ok(SliceEnd::Finalize(status)) => self.finalize(job, status),
            Err(_) => {
                send_line(
                    &job.reply,
                    &Response::Error {
                        id: Some(job.req_id.clone()),
                        code: ErrorCode::Internal,
                        msg: "campaign engine panicked; the worker survives".into(),
                    },
                );
                self.finalize(job, DoneStatus::Failed);
            }
        }
    }

    fn deadline_expired(&self, job: &Job) -> bool {
        job.deadline_at.is_some_and(|at| self.clock.now_ms() >= at)
    }

    /// Parses the netlist and constructs the driver (under a panic
    /// shield). `Some(status)` short-circuits to finalization.
    fn build(&self, job: &mut Job) -> Option<DoneStatus> {
        let Work::Unbuilt { netlist, options } = &job.work else {
            return None;
        };
        let (netlist, options) = (netlist.clone(), options.clone());
        let req_id = job.req_id.clone();
        let built =
            panic::catch_unwind(AssertUnwindSafe(|| -> Result<CampaignDriver, Response> {
                let nl = bench::parse(&netlist).map_err(|e| Response::Error {
                    id: Some(req_id.clone()),
                    code: ErrorCode::BadField,
                    msg: format!("netlist does not parse: {e}"),
                })?;
                let config = options.to_config();
                CampaignDriver::try_new(nl, &config, options.trace, options.certify).map_err(
                    |DriverError::Preflight(msg)| Response::Error {
                        id: Some(req_id.clone()),
                        code: ErrorCode::Preflight,
                        msg,
                    },
                )
            }));
        match built {
            Ok(Ok(driver)) => {
                let start = Response::Start {
                    id: job.req_id.clone(),
                    faults: driver.total_faults() as u64,
                    sim_detected: driver.sim_detected() as u64,
                    random_tests: driver.result().tests.len() as u64,
                };
                job.work = Work::Running(Box::new(driver));
                if !send_line(&job.reply, &start) {
                    return Some(DoneStatus::Cancelled);
                }
                None
            }
            Ok(Err(error)) => {
                send_line(&job.reply, &error);
                Some(DoneStatus::Failed)
            }
            Err(_) => {
                send_line(
                    &job.reply,
                    &Response::Error {
                        id: Some(job.req_id.clone()),
                        code: ErrorCode::Internal,
                        msg: "netlist build panicked; the worker survives".into(),
                    },
                );
                Some(DoneStatus::Failed)
            }
        }
    }

    /// Runs up to `quantum` faults of a built campaign. Verdict and cert
    /// lines accumulate into one channel message per quantum — batching
    /// is what keeps the writer thread from being woken per fault. A
    /// dead connection is therefore noticed at flush granularity, one
    /// quantum late at worst.
    fn run_quantum(&self, job: &mut Job) -> SliceEnd {
        let mut batch = String::new();
        for _ in 0..self.config.quantum.max(1) {
            // ORDERING: Relaxed — see the Job.cancelled note.
            if job.cancelled.load(Ordering::Relaxed) {
                flush_batch(&job.reply, &mut batch);
                return SliceEnd::Finalize(DoneStatus::Cancelled);
            }
            if let Some(at) = job.deadline_at {
                let now = self.clock.now_ms();
                if now >= at {
                    flush_batch(&job.reply, &mut batch);
                    self.flush_deadline(job);
                    return SliceEnd::Finalize(DoneStatus::Deadline);
                }
                let Work::Running(driver) = &mut job.work else {
                    unreachable!("run_quantum only sees built jobs");
                };
                driver.clamp_wall(Duration::from_millis(at - now));
            }
            let Work::Running(driver) = &mut job.work else {
                unreachable!("run_quantum only sees built jobs");
            };
            // Copy the wire-relevant record fields out so the borrow of
            // the driver ends before lines are rendered and sent.
            let (solved, net, stuck, verdict, vector) = {
                let Some(record) = driver.step() else {
                    return SliceEnd::Finalize(DoneStatus::Ok);
                };
                let (verdict, vector) = match &record.outcome {
                    FaultOutcome::Detected(v) => (
                        "detected",
                        Some(v.iter().map(|&b| if b { '1' } else { '0' }).collect()),
                    ),
                    FaultOutcome::DetectedBySimulation => ("detected", None),
                    FaultOutcome::Untestable => ("untestable", None),
                    FaultOutcome::Aborted => ("aborted", None),
                    FaultOutcome::StaticallyRedundant => ("redundant", None),
                };
                (
                    record.sat_vars > 0,
                    record.fault.net.index() as u64,
                    u64::from(record.fault.stuck),
                    verdict,
                    vector,
                )
            };
            // ORDERING: Relaxed — see PoolStats.
            self.stats.steps.fetch_add(1, Ordering::Relaxed);
            if solved {
                job.solves += 1;
                self.stats.solves.fetch_add(1, Ordering::Relaxed);
            }
            let seq = (driver.position() - 1) as u64;
            let proof_bytes = driver.last_proof_bytes();
            let done = driver.is_done();
            let line = Response::Verdict {
                id: job.req_id.clone(),
                seq,
                net,
                stuck,
                verdict: verdict.into(),
                vector,
            };
            push_line(&mut batch, &line);
            if job.certify && solved {
                let cert = Response::Cert {
                    id: job.req_id.clone(),
                    seq,
                    proof_bytes,
                };
                push_line(&mut batch, &cert);
            }
            if done {
                return if flush_batch(&job.reply, &mut batch) {
                    SliceEnd::Finalize(DoneStatus::Ok)
                } else {
                    SliceEnd::Finalize(DoneStatus::Cancelled)
                };
            }
        }
        if !flush_batch(&job.reply, &mut batch) {
            return SliceEnd::Finalize(DoneStatus::Cancelled);
        }
        SliceEnd::Requeue
    }

    /// Flushes every pending fault as a `deadline` verdict (no solving)
    /// and abandons the driver.
    fn flush_deadline(&self, job: &mut Job) {
        let Work::Running(driver) = &mut job.work else {
            return;
        };
        let start = driver.position() as u64;
        let pending = driver.pending().to_vec();
        driver.abandon();
        let mut batch = String::new();
        for (k, f) in pending.iter().enumerate() {
            job.deadlined += 1;
            let line = Response::Verdict {
                id: job.req_id.clone(),
                seq: start + k as u64,
                net: f.net.index() as u64,
                stuck: u64::from(f.stuck),
                verdict: "deadline".into(),
                vector: None,
            };
            push_line(&mut batch, &line);
            if batch.len() >= 64 * 1024 && !flush_batch(&job.reply, &mut batch) {
                return;
            }
        }
        flush_batch(&job.reply, &mut batch);
    }

    /// Terminal bookkeeping: audit + telemetry for built campaigns, the
    /// `done` line, counter updates, and release of the in-flight slot.
    fn finalize(&self, job: Job, status: DoneStatus) {
        // ORDERING: Relaxed — see PoolStats.
        match status {
            DoneStatus::Ok => self.stats.completed.fetch_add(1, Ordering::Relaxed),
            DoneStatus::Cancelled => self.stats.cancelled.fetch_add(1, Ordering::Relaxed),
            DoneStatus::Failed => self.stats.failed.fetch_add(1, Ordering::Relaxed),
            DoneStatus::Deadline => self.stats.deadline_expired.fetch_add(1, Ordering::Relaxed),
        };
        let (mut detected, mut untestable, mut aborted) = (0u64, 0u64, 0u64);
        if let Work::Running(driver) = &job.work {
            let r = driver.result();
            detected = r.detected() as u64;
            untestable = r.untestable() as u64;
            aborted = r.aborted() as u64;
        }
        // Audit + per-request telemetry want the driver by value.
        if let Work::Running(driver) = job.work {
            let circuit = driver.netlist().name().to_string();
            let total = driver.total_faults() as u64;
            let (result, traces, sink) = driver.into_parts();
            if job.certify {
                if let Some(sink) = sink {
                    let audit = atpg_easy_proof::audit_stream(&sink.into_events());
                    send_line(
                        &job.reply,
                        &Response::Audit {
                            id: job.req_id.clone(),
                            certified: audit.certified() as u64,
                            failed: audit.failed() as u64,
                            uncertified: audit.uncertified() as u64,
                            ok: audit.ok(),
                        },
                    );
                }
            }
            if let Some(shared) = &self.trace_sink {
                let mut shared = shared.clone();
                let sat_detected = result
                    .records
                    .iter()
                    .filter(|r| matches!(r.outcome, FaultOutcome::Detected(_)))
                    .count() as u64;
                let sim_detected = detected - sat_detected;
                // Request-scoped meta: the circuit field carries the
                // request id so rows from concurrent campaigns stay
                // attributable in the shared JSONL artifact.
                let meta = CampaignMeta {
                    circuit: format!("{circuit}@{}", job.req_id),
                    threads: 1,
                    commit_window: 1,
                    queue_depth: total,
                    committed_sat: sat_detected,
                    committed_unsat: untestable + aborted,
                    dropped: sim_detected,
                    wasted_solves: 0,
                    static_pruned: result.statically_pruned() as u64,
                    cutwidth_estimate: None,
                };
                let _ = shared.campaign(&meta);
                if job.trace {
                    for t in &traces {
                        let mut t = t.clone();
                        // The worker field tags the scheduler job id —
                        // the per-request key of the artifact.
                        t.worker = job.id;
                        let _ = shared.instance(&t);
                    }
                }
                let _ = shared.finish();
            }
        }
        // Release the slot *before* the terminal line goes out: a client
        // that reacts to `done` by submitting again (or by reading the
        // stats gauge) must observe the freed capacity.
        let mut ready = self.lock_ready();
        ready.index.remove(&(job.tenant, job.req_id.clone()));
        ready.in_flight -= 1;
        Self::release(&mut ready, job.tenant);
        drop(ready);
        // A campaign the tenant pipelined behind this one may have just
        // become schedulable.
        self.work_ready.notify_one();
        // ORDERING: Relaxed — see PoolStats.
        self.stats.active.fetch_sub(1, Ordering::Relaxed);
        let done = Response::Done {
            id: job.req_id.clone(),
            status,
            detected,
            untestable,
            aborted,
            deadlined: job.deadlined,
            solves: job.solves,
            wall_ms: self.clock.now_ms().saturating_sub(job.admitted_ms),
        };
        send_line(&job.reply, &done);
    }
}

/// Writes one response line into a connection's outbound channel;
/// `false` means the connection is gone (writer thread exited). Channel
/// messages are newline-terminated — the writer forwards them verbatim,
/// which is what lets a worker batch a whole quantum into one message.
pub(crate) fn send_line(reply: &Sender<String>, response: &Response) -> bool {
    let mut line = response.render();
    line.push('\n');
    reply.send(line).is_ok()
}

/// Appends one response line to a pending batch.
fn push_line(batch: &mut String, response: &Response) {
    batch.push_str(&response.render());
    batch.push('\n');
}

/// Sends a pending batch (one channel message, many lines); `false`
/// means the connection is gone. An empty batch is a no-op success.
fn flush_batch(reply: &Sender<String>, batch: &mut String) -> bool {
    if batch.is_empty() {
        return true;
    }
    reply.send(std::mem::take(batch)).is_ok()
}
