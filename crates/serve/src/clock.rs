//! Time for the scheduler: a trait so deadline logic is deterministic
//! under test.
//!
//! Production uses [`SystemClock`] (monotonic, `Instant`-backed); the
//! deadline tests use [`FakeClock`], which only moves when the test
//! advances it — an expired deadline is then a fact of arithmetic, not a
//! race against a fast worker.

use std::time::Instant;

use atpg_easy_syncx::atomic::{AtomicU64, Ordering};

/// A monotonic millisecond clock.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary fixed origin.
    fn now_ms(&self) -> u64;
}

/// The real monotonic clock, origin at construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock starting at 0 now.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

/// A manually-advanced clock for deterministic deadline tests.
#[derive(Debug, Default)]
pub struct FakeClock {
    // ORDERING: Relaxed is enough — the clock is a monotone counter with
    // no other state published alongside it; tests advance it from one
    // thread and workers only need to eventually observe a fresh value.
    ms: AtomicU64,
}

impl FakeClock {
    /// A clock frozen at 0.
    pub fn new() -> Self {
        FakeClock::default()
    }

    /// A clock frozen at `ms`.
    pub fn at(ms: u64) -> Self {
        let c = FakeClock::default();
        c.ms.store(ms, Ordering::Relaxed);
        c
    }

    /// Moves time forward by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::Relaxed);
    }
}

impl Clock for FakeClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_clock_moves_only_when_advanced() {
        let c = FakeClock::at(5);
        assert_eq!(c.now_ms(), 5);
        c.advance(10);
        assert_eq!(c.now_ms(), 15);
    }

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }
}
