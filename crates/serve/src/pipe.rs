//! An in-memory byte pipe: the transport behind the in-process client.
//!
//! `pipe()` returns a writer/reader pair sharing a buffer guarded by a
//! mutex + condvar. Dropping either end closes the pipe: the reader then
//! drains what is buffered and sees EOF; the writer sees
//! `BrokenPipe` — exactly the `TcpStream` failure modes the server's
//! connection threads are written against, which is what lets the test
//! harness exercise disconnect-cancellation without real sockets.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use atpg_easy_syncx::Arc;

#[derive(Debug, Default)]
struct State {
    data: VecDeque<u8>,
    /// Set when either end is dropped (or `close` is called).
    closed: bool,
}

#[derive(Debug, Default)]
struct Shared {
    state: Mutex<State>,
    readable: Condvar,
}

/// The write half of an in-memory pipe. Dropping it closes the pipe.
#[derive(Debug)]
pub struct PipeWriter {
    shared: Arc<Shared>,
}

/// The read half of an in-memory pipe. Dropping it closes the pipe.
#[derive(Debug)]
pub struct PipeReader {
    shared: Arc<Shared>,
    /// With a timeout set, reads that would block longer return
    /// `ErrorKind::TimedOut` instead of hanging — the fuzz harness sets
    /// this so a protocol hang fails the test instead of wedging it.
    timeout: Option<Duration>,
}

/// A connected in-memory byte stream: bytes written to the
/// [`PipeWriter`] come out of the [`PipeReader`], FIFO, unbounded.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let shared = Arc::new(Shared::default());
    (
        PipeWriter {
            shared: Arc::clone(&shared),
        },
        PipeReader {
            shared,
            timeout: None,
        },
    )
}

impl PipeWriter {
    /// Explicitly closes the pipe (same as dropping the writer).
    pub fn close(&self) {
        let mut st = self.shared.state.lock().expect("pipe mutex");
        st.closed = true;
        self.shared.readable.notify_all();
    }
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.shared.state.lock().expect("pipe mutex");
        if st.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        st.data.extend(buf);
        self.shared.readable.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.close();
    }
}

impl PipeReader {
    /// Makes blocking reads give up with `TimedOut` after `timeout`.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self.shared.state.lock().expect("pipe mutex");
        loop {
            if !st.data.is_empty() {
                let n = buf.len().min(st.data.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = st.data.pop_front().expect("n bytes are buffered");
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0); // EOF
            }
            st = match self.timeout {
                None => self.shared.readable.wait(st).expect("pipe mutex"),
                Some(t) => {
                    let (guard, timed_out) = self
                        .shared
                        .readable
                        .wait_timeout(st, t)
                        .expect("pipe mutex");
                    if timed_out.timed_out() && guard.data.is_empty() && !guard.closed {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "pipe read timed out",
                        ));
                    }
                    guard
                }
            };
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("pipe mutex");
        st.closed = true;
        self.shared.readable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn bytes_round_trip_in_order() {
        let (mut w, r) = pipe();
        w.write_all(b"hello\nworld\n").unwrap();
        drop(w);
        let mut lines = BufReader::new(r).lines();
        assert_eq!(lines.next().unwrap().unwrap(), "hello");
        assert_eq!(lines.next().unwrap().unwrap(), "world");
        assert!(lines.next().is_none(), "EOF after writer drop");
    }

    #[test]
    fn dropping_the_reader_breaks_the_writer() {
        let (mut w, r) = pipe();
        drop(r);
        assert_eq!(w.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn read_timeout_fires_instead_of_hanging() {
        let (_w, mut r) = pipe();
        r.set_read_timeout(Some(Duration::from_millis(10)));
        let mut buf = [0u8; 1];
        assert_eq!(
            r.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
    }

    #[test]
    fn cross_thread_handoff() {
        let (mut w, mut r) = pipe();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100u8 {
                    w.write_all(&[i]).unwrap();
                }
            });
            let mut buf = Vec::new();
            r.read_to_end(&mut buf).unwrap();
            assert_eq!(buf, (0..100u8).collect::<Vec<_>>());
        });
    }
}
