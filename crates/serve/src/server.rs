//! The daemon: connection acceptance, line framing and request dispatch.
//!
//! A [`Server`] owns one [`Scheduler`] and its worker pool. Each
//! connection — a real `TcpStream` via [`Server::serve`] or an
//! in-memory [`pipe`](crate::pipe::pipe) pair via [`Server::connect`] —
//! gets two threads:
//!
//! - a **reader** that frames newline-delimited requests (with a hard
//!   per-line byte cap and resynchronization after an overlong line),
//!   validates UTF-8 and protocol shape, and dispatches into the
//!   scheduler. Malformed input produces a typed `error` response on
//!   that connection; it never panics the daemon and never kills the
//!   connection.
//! - a **writer** that drains the connection's response channel in
//!   order. Responses from concurrent campaigns of one tenant interleave
//!   at line granularity but never tear.
//!
//! Reader EOF (client disconnect) cancels every in-flight campaign of
//! the tenant — the disconnect-cancellation contract the deadline tests
//! pin down.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::sync::mpsc;

use atpg_easy_obs::SharedSink;
use atpg_easy_syncx::atomic::{AtomicU64, Ordering};
use atpg_easy_syncx::{thread, Arc};

use crate::clock::{Clock, SystemClock};
use crate::pipe::{pipe, PipeReader, PipeWriter};
use crate::proto::{ErrorCode, ProtoError, Request, Response};
use crate::sched::{send_line, Scheduler, ServeConfig};

/// A running ATPG campaign daemon: worker pool + scheduler, accepting
/// any number of connections.
pub struct Server {
    sched: Arc<Scheduler>,
    workers: Vec<thread::JoinHandle<()>>,
    next_tenant: AtomicU64,
}

impl Server {
    /// Starts a server with the real clock and no telemetry sink.
    pub fn start(config: ServeConfig) -> Self {
        Self::with_clock(config, Arc::new(SystemClock::new()))
    }

    /// Starts a server on an injected clock (deadline tests pass a
    /// [`FakeClock`](crate::FakeClock) here).
    pub fn with_clock(config: ServeConfig, clock: Arc<dyn Clock>) -> Self {
        Self::with_clock_and_sink(config, clock, None)
    }

    /// Starts a server with an injected clock and a shared telemetry
    /// sink that receives request-scoped `CampaignMeta` gauges and (for
    /// `trace:true` requests) per-instance rows.
    pub fn with_clock_and_sink(
        config: ServeConfig,
        clock: Arc<dyn Clock>,
        sink: Option<SharedSink>,
    ) -> Self {
        let sched = Arc::new(Scheduler::new(config, clock, sink));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let sched = Arc::clone(&sched);
                thread::spawn(move || sched.worker_loop())
            })
            .collect();
        Server {
            sched,
            workers,
            next_tenant: AtomicU64::new(0),
        }
    }

    /// The server's tuning knobs.
    pub fn config(&self) -> ServeConfig {
        self.sched.config
    }

    /// A live stats snapshot (same numbers a `stats` request returns).
    pub fn stats(&self) -> crate::proto::StatsSnapshot {
        self.sched.snapshot()
    }

    /// Opens an in-process connection: the returned writer feeds the
    /// server's reader thread, the returned reader yields the server's
    /// responses. Dropping the writer is a client disconnect.
    pub fn connect(&self) -> (PipeWriter, PipeReader) {
        let (client_tx, server_rx) = pipe();
        let (server_tx, client_rx) = pipe();
        self.attach(server_rx, server_tx);
        (client_tx, client_rx)
    }

    /// Attaches one connection: spawns its reader and writer threads.
    /// Generic over the transport so TCP and in-memory pipes share every
    /// line of framing and dispatch logic.
    pub fn attach<R, W>(&self, read: R, write: W)
    where
        R: Read + Send + 'static,
        W: Write + Send + 'static,
    {
        // ORDERING: Relaxed — tenant ids only need uniqueness.
        let tenant = self.next_tenant.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = mpsc::channel::<String>();
        let sched = Arc::clone(&self.sched);
        let _writer = thread::spawn(move || {
            // Channel messages arrive newline-terminated (a worker may
            // batch a whole quantum of lines into one message).
            let mut write = write;
            let mut batch = String::new();
            while let Ok(msg) = reply_rx.recv() {
                batch.clear();
                batch.push_str(&msg);
                // Coalesce whatever else is already queued into one
                // write: a verdict stream costs a syscall per batch,
                // not per line. Bounded so one flush cannot balloon.
                while batch.len() < 64 * 1024 {
                    match reply_rx.try_recv() {
                        Ok(msg) => batch.push_str(&msg),
                        Err(_) => break,
                    }
                }
                if write.write_all(batch.as_bytes()).is_err() {
                    // Client side is gone; draining further lines would
                    // go nowhere. Senders see the closed channel.
                    return;
                }
                let _ = write.flush();
            }
        });
        let _reader = thread::spawn(move || {
            read_loop(&sched, tenant, read, &reply_tx);
            // EOF or transport error: the tenant is gone. Cancel its
            // campaigns so workers stop spending solver time on them.
            sched.cancel_tenant(tenant);
        });
    }

    /// Serves connections from a bound TCP listener until accept fails
    /// (i.e. the listener is shut down). Each connection runs on its own
    /// reader/writer threads.
    pub fn serve(&self, listener: &TcpListener) -> std::io::Result<()> {
        for stream in listener.incoming() {
            let stream = stream?;
            let write = stream.try_clone()?;
            self.attach(stream, write);
        }
        Ok(())
    }

    /// Stops the worker pool and joins it. In-flight campaigns finish
    /// their current slice and are not resumed.
    pub fn shutdown(mut self) {
        self.sched.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.sched.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.sched.config)
            .finish_non_exhaustive()
    }
}

/// One framed line, or why there isn't one.
enum Frame {
    Line(Vec<u8>),
    /// The line exceeded the cap; `true` if the stream resynchronized at
    /// the next newline (the connection survives), `false` on EOF.
    Overlong(bool),
    Eof,
    TransportError,
}

/// Reads one `\n`-terminated line with a byte cap. On an overlong line
/// the remainder is discarded up to the next newline so one huge line
/// cannot wedge the framing for subsequent requests.
fn read_frame(reader: &mut impl BufRead, cap: usize) -> Frame {
    let mut line = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Frame::TransportError,
        };
        if chunk.is_empty() {
            return if line.is_empty() {
                Frame::Eof
            } else {
                // A final unterminated line still frames: truncated-input
                // robustness (the proptests feed exactly this).
                Frame::Line(line)
            };
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&chunk[..pos]);
            reader.consume(pos + 1);
            if line.len() > cap {
                return Frame::Overlong(true);
            }
            return Frame::Line(line);
        }
        let take = chunk.len();
        line.extend_from_slice(chunk);
        reader.consume(take);
        if line.len() > cap {
            // Discard to the next newline, then report.
            loop {
                let chunk = match reader.fill_buf() {
                    Ok(c) => c,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return Frame::Overlong(false),
                };
                if chunk.is_empty() {
                    return Frame::Overlong(false);
                }
                if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
                    reader.consume(pos + 1);
                    return Frame::Overlong(true);
                }
                let take = chunk.len();
                reader.consume(take);
            }
        }
    }
}

/// The reader-thread body: frame, validate, dispatch, reply — until EOF.
fn read_loop(sched: &Scheduler, tenant: u64, read: impl Read, reply: &mpsc::Sender<String>) {
    let mut reader = BufReader::new(read);
    let cap = sched.config.max_line_bytes;
    loop {
        let line = match read_frame(&mut reader, cap) {
            Frame::Eof | Frame::TransportError => return,
            Frame::Overlong(resynced) => {
                let err = Response::Error {
                    id: None,
                    code: ErrorCode::LineTooLong,
                    msg: format!("request line exceeds {cap} bytes"),
                };
                if !send_line(reply, &err) || !resynced {
                    return;
                }
                continue;
            }
            Frame::Line(bytes) => bytes,
        };
        if line.is_empty() {
            continue; // blank keep-alive lines are fine
        }
        let text = match std::str::from_utf8(&line) {
            Ok(t) => t,
            Err(e) => {
                let err = Response::Error {
                    id: None,
                    code: ErrorCode::Utf8,
                    msg: format!("request line is not UTF-8: {e}"),
                };
                if !send_line(reply, &err) {
                    return;
                }
                continue;
            }
        };
        let response = match Request::parse(text) {
            Err(ProtoError { code, msg }) => Response::Error {
                id: None,
                code,
                msg,
            },
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Stats) => Response::Stats(sched.snapshot()),
            Ok(Request::Cancel { id }) => {
                if sched.cancel(tenant, &id) {
                    // The cancelled campaign's own `done status=cancelled`
                    // is the acknowledgement; no extra line here.
                    continue;
                }
                Response::Error {
                    id: Some(id),
                    code: ErrorCode::UnknownId,
                    msg: "no such campaign in flight on this connection".into(),
                }
            }
            Ok(Request::Campaign {
                id,
                netlist,
                options,
            }) => match sched.try_admit(tenant, id, netlist, options, reply.clone()) {
                // Admitted: the `accepted` line is already in the reply
                // queue, ordered ahead of the campaign's stream.
                None => continue,
                Some(refusal) => refusal,
            },
        };
        if !send_line(reply, &response) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_split_on_newlines_and_keep_final_fragment() {
        let mut r = BufReader::new(Cursor::new(b"ab\ncd\nef".to_vec()));
        assert!(matches!(read_frame(&mut r, 64), Frame::Line(l) if l == b"ab"));
        assert!(matches!(read_frame(&mut r, 64), Frame::Line(l) if l == b"cd"));
        assert!(matches!(read_frame(&mut r, 64), Frame::Line(l) if l == b"ef"));
        assert!(matches!(read_frame(&mut r, 64), Frame::Eof));
    }

    #[test]
    fn overlong_line_resyncs_at_next_newline() {
        let mut data = vec![b'x'; 100];
        data.extend_from_slice(b"\n{\"ok\":1}\n");
        let mut r = BufReader::new(Cursor::new(data));
        assert!(matches!(read_frame(&mut r, 8), Frame::Overlong(true)));
        assert!(matches!(read_frame(&mut r, 64), Frame::Line(l) if l == b"{\"ok\":1}"));
    }

    #[test]
    fn overlong_line_at_eof_reports_no_resync() {
        let mut r = BufReader::new(Cursor::new(vec![b'x'; 100]));
        assert!(matches!(read_frame(&mut r, 8), Frame::Overlong(false)));
    }
}
