//! `serve` — the ATPG campaign daemon.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--capacity N] [--quantum N]
//!       [--trace-out FILE]
//! ```
//!
//! Binds a TCP listener and serves the JSONL campaign protocol (see the
//! README's "Serving" section) until killed. With `--trace-out`, every
//! request's `CampaignMeta` gauge — and, for `trace:true` requests, its
//! per-instance rows — append to one shared JSONL artifact.

use std::net::TcpListener;
use std::process::ExitCode;

use atpg_easy_obs::{JsonlSink, SharedSink};
use atpg_easy_serve::{ServeConfig, Server, SystemClock};
use atpg_easy_syncx::Arc;

struct Args {
    addr: String,
    config: ServeConfig,
    trace_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--capacity N] [--quantum N] [--trace-out FILE]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7117".into(),
        config: ServeConfig::default(),
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--workers" => args.config.workers = parse_num(&value("--workers"), "--workers"),
            "--capacity" => args.config.capacity = parse_num(&value("--capacity"), "--capacity"),
            "--quantum" => args.config.quantum = parse_num(&value("--quantum"), "--quantum"),
            "--trace-out" => args.trace_out = Some(value("--trace-out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn parse_num(s: &str, name: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("error: {name} wants a positive integer, got {s:?}");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let sink = match &args.trace_out {
        None => None,
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(SharedSink::new(JsonlSink::new(std::io::BufWriter::new(f)))),
            Err(e) => {
                eprintln!("error: cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "serve: listening on {} ({} workers, capacity {}, quantum {})",
        args.addr, args.config.workers, args.config.capacity, args.config.quantum
    );
    let server = Server::with_clock_and_sink(args.config, Arc::new(SystemClock::new()), sink);
    match server.serve(&listener) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: accept failed: {e}");
            ExitCode::FAILURE
        }
    }
}
