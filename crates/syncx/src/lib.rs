//! Synchronization facade for the *atpg-easy* workspace.
//!
//! Concurrency-sensitive code (the parallel campaign engine's sharded
//! queue and drop-bitmap, the `obs` trace collector) imports its atomics,
//! `Arc`, `Mutex`, and thread-spawning through this crate instead of
//! `std::sync` directly. In a normal build every item below is a plain
//! re-export of the std type — zero cost, byte-identical codegen. Under
//! `RUSTFLAGS="--cfg loom"` the same paths resolve to the loom model
//! checker's shims, so the `tests/loom_*.rs` suites can exhaustively
//! explore thread interleavings of the real production types.
//!
//! The `S002` source lint enforces the funnel: no crate outside this one
//! may import `std::sync::atomic`, so new atomics cannot silently escape
//! loom coverage. `S004` similarly pins `thread::spawn` to the parallel
//! engine.
//!
//! Code built under `cfg(loom)` must only exercise these primitives
//! inside `loom::model`; outside a model the loom shims panic. Normal
//! builds have no such restriction (the types *are* std's).

/// Atomic types and orderings (`std::sync::atomic` or loom's shims).
pub mod atomic {
    #[cfg(not(loom))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };

    #[cfg(loom)]
    pub use loom::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

/// Thread spawning (`std::thread` or loom's scheduler-aware shims).
/// `std::thread::scope` has no loom equivalent; scoped fan-out stays in
/// the parallel engine, whose loom coverage models the scoped protocol
/// with `spawn` + `join` over `Arc`-shared state.
pub mod thread {
    #[cfg(not(loom))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(loom)]
    pub use loom::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(not(loom))]
pub use std::sync::{Arc, Mutex, MutexGuard};

#[cfg(loom)]
pub use loom::sync::{Arc, Mutex, MutexGuard};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_is_std_outside_loom() {
        // In a normal build the facade types must be *the* std types, not
        // lookalikes: a value constructed through the facade is usable
        // where std's type is demanded.
        #[cfg(not(loom))]
        {
            let a: std::sync::atomic::AtomicUsize = super::atomic::AtomicUsize::new(7);
            assert_eq!(a.load(super::atomic::Ordering::Relaxed), 7);
            let m: std::sync::Mutex<u32> = super::Mutex::new(3);
            assert_eq!(*m.lock().expect("std mutex"), 3);
            let h: std::thread::JoinHandle<u8> = super::thread::spawn(|| 9);
            assert_eq!(h.join().expect("std thread"), 9);
        }
    }
}
