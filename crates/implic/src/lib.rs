//! Static implication analysis over the netlist IR.
//!
//! The paper's thesis is that circuit *structure* makes ATPG easy; the
//! solver crates exploit that structure dynamically, inside the search.
//! This crate exploits it statically, before a single CNF is built:
//!
//! * [`ImplicationEngine`] — a dataflow engine computing, for every
//!   literal `net = value`, the set of literals it implies. Direct
//!   implications come from gate semantics (a controlling input forces
//!   the output; a non-controlled output forces every input); the
//!   closure adds transitive, contrapositive, and *extended backward*
//!   implications (facts common to every justification of an
//!   unjustified gate assignment, the static form of conflict-driven
//!   learning).
//! * [`Scoap`] — SCOAP-style controllability (`CC0`/`CC1`) and
//!   observability (`CO`) testability scores.
//! * [`analyze`] / [`StaticAnalysis`] — a FIRE-style redundancy pass:
//!   a stuck-at fault is proved untestable when its necessary
//!   activation/propagation conditions imply a static conflict, when
//!   its activation literal is infeasible (constant net), or when the
//!   fault site cannot reach a primary output at all.
//!
//! Everything here is *sound by construction*: each implication edge is
//! justified by gate semantics, and every closure operation (transitive
//! chaining, contraposition, intersection over justifications) preserves
//! soundness. The test-suite cross-checks both claims — implications
//! against 256-wide bit-parallel simulation, redundancy verdicts against
//! the certified SAT path.

#![forbid(unsafe_code)]

mod graph;
mod redundancy;
mod scoap;

pub use graph::{ImplicationEngine, ImplicationStats, Lit};
pub use redundancy::{analyze, RedundancyReason, RedundantFault, StaticAnalysis};
pub use scoap::{Scoap, SCOAP_INFINITY};
