//! FIRE-style static redundancy identification.
//!
//! A stuck-at fault is *redundant* (untestable) when no input vector
//! both activates it and propagates its effect to a primary output.
//! Three static proofs are attempted, cheapest first:
//!
//! 1. **Unobservable site** — the fault net has no structural path to
//!    any primary output, so no effect can ever be observed.
//! 2. **Infeasible activation** — the net is provably constant at the
//!    stuck value, so the good and faulty circuits never differ.
//! 3. **Static conflict** — the conjunction of the fault's *necessary*
//!    detection conditions (activation value at the site, plus
//!    non-controlling side inputs along the single-fanout dominator
//!    chain) is contradictory under the implication closure.
//!
//! Each proof only ever uses necessary conditions and sound
//! implications, so a statically redundant verdict is a genuine
//! untestability certificate: the SAT path must answer UNSAT for the
//! same fault (and the test-suite checks that it does).

use atpg_easy_netlist::topo::topo_order;
use atpg_easy_netlist::{GateKind, NetId, Netlist};

use crate::{ImplicationEngine, Lit, Scoap};

/// Why a fault was proved untestable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedundancyReason {
    /// The fault net has no structural path to a primary output.
    Unobservable,
    /// The net is provably constant at the stuck value; the fault can
    /// never be activated.
    ActivationInfeasible,
    /// The necessary activation/propagation conditions imply a static
    /// conflict.
    StaticConflict,
}

impl RedundancyReason {
    /// Stable lowercase label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            RedundancyReason::Unobservable => "unobservable",
            RedundancyReason::ActivationInfeasible => "activation-infeasible",
            RedundancyReason::StaticConflict => "static-conflict",
        }
    }
}

/// A statically proved untestable stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedundantFault {
    /// The fault site.
    pub net: NetId,
    /// The stuck value (`true` = s-a-1).
    pub stuck: bool,
    /// The proof that applied (cheapest applicable is reported).
    pub reason: RedundancyReason,
}

/// The full result of the static pre-pass over one netlist.
#[derive(Debug, Clone)]
pub struct StaticAnalysis {
    /// The implication engine (kept for downstream queries).
    pub engine: ImplicationEngine,
    /// SCOAP testability scores.
    pub scoap: Scoap,
    /// Nets with no structural path to any primary output.
    pub unobservable: Vec<NetId>,
    /// Nets proved constant, with their constant value.
    pub constants: Vec<(NetId, bool)>,
    /// Nets whose *both* polarities are infeasible — a contradiction
    /// that indicates a malformed netlist (empty on well-formed input).
    pub contradictory: Vec<NetId>,
    /// Statically proved redundant faults, in (net, s-a-0, s-a-1) order.
    pub redundant: Vec<RedundantFault>,
}

impl StaticAnalysis {
    /// Whether the given fault was statically proved redundant.
    pub fn is_redundant(&self, net: NetId, stuck: bool) -> bool {
        self.redundant
            .iter()
            .any(|r| r.net == net && r.stuck == stuck)
    }
}

/// Runs the full static pre-pass: implication closure, SCOAP scores,
/// observability reachability, and the per-fault redundancy proofs.
pub fn analyze(nl: &Netlist) -> StaticAnalysis {
    let engine = ImplicationEngine::build(nl);
    let scoap = Scoap::build(nl);
    let reach = output_reachability(nl);

    let mut unobservable = Vec::new();
    let mut constants = Vec::new();
    let mut contradictory = Vec::new();
    for net in nl.net_ids() {
        if !reach[net.index()] {
            unobservable.push(net);
        }
        if engine.contradictory(net) {
            contradictory.push(net);
        } else if let Some(v) = engine.constant(net) {
            constants.push((net, v));
        }
    }

    let fanouts = nl.fanouts();
    let mut redundant = Vec::new();
    for net in nl.net_ids() {
        for stuck in [false, true] {
            let reason = if !reach[net.index()] {
                Some(RedundancyReason::Unobservable)
            } else if engine.infeasible(Lit::new(net, !stuck)) {
                Some(RedundancyReason::ActivationInfeasible)
            } else if engine.conflicts(&necessary_conditions(nl, &fanouts, net, stuck)) {
                Some(RedundancyReason::StaticConflict)
            } else {
                None
            };
            if let Some(reason) = reason {
                redundant.push(RedundantFault { net, stuck, reason });
            }
        }
    }

    StaticAnalysis {
        engine,
        scoap,
        unobservable,
        constants,
        contradictory,
        redundant,
    }
}

/// Necessary conditions for detecting `net` stuck-at `stuck`:
/// activation (`net = ¬stuck` in the good circuit) plus, along the
/// chain of single-fanout dominator gates, every side input at its
/// non-controlling value. The walk stops at the first primary output,
/// fanout stem, or parity gate side-path.
fn necessary_conditions(
    nl: &Netlist,
    fanouts: &[Vec<atpg_easy_netlist::GateId>],
    net: NetId,
    stuck: bool,
) -> Vec<Lit> {
    let mut lits = vec![Lit::new(net, !stuck)];
    let mut m = net;
    loop {
        if nl.is_output(m) {
            break;
        }
        let users = &fanouts[m.index()];
        if users.len() != 1 {
            break; // stem: the effect may take any branch
        }
        let g = nl.gate(users[0]);
        let noncontrolling = match g.kind {
            GateKind::And | GateKind::Nand => Some(true),
            GateKind::Or | GateKind::Nor => Some(false),
            // Parity gates and single-input gates propagate any value.
            _ => None,
        };
        if let Some(v) = noncontrolling {
            for &j in &g.inputs {
                if j != m {
                    lits.push(Lit::new(j, v));
                }
            }
        }
        m = g.output;
    }
    lits
}

/// `reach[n]` — whether net `n` has a structural path to some primary
/// output (including being one).
fn output_reachability(nl: &Netlist) -> Vec<bool> {
    let mut reach = vec![false; nl.num_nets()];
    for &o in nl.outputs() {
        reach[o.index()] = true;
    }
    let order = topo_order(nl).unwrap_or_else(|_| nl.gate_ids().collect());
    for &gid in order.iter().rev() {
        let g = nl.gate(gid);
        if reach[g.output.index()] {
            for &i in &g.inputs {
                reach[i.index()] = true;
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_circuits::suite;
    use atpg_easy_netlist::Netlist;

    #[test]
    fn dangling_net_faults_are_unobservable() {
        let mut nl = Netlist::new("dangle");
        let a = nl.add_input("a");
        let d = nl.add_gate_named(GateKind::Not, vec![a], "d").unwrap();
        let o = nl.add_gate_named(GateKind::Buf, vec![a], "o").unwrap();
        nl.add_output(o);
        let res = analyze(&nl);
        assert_eq!(res.unobservable, vec![d]);
        assert!(res.is_redundant(d, false));
        assert!(res.is_redundant(d, true));
        assert!(!res.is_redundant(o, false));
        assert_eq!(res.redundant[0].reason, RedundancyReason::Unobservable);
    }

    #[test]
    fn tautology_fault_is_activation_infeasible() {
        // y = OR(a, NOT a) is constant 1; y s-a-1 cannot be activated.
        let mut nl = Netlist::new("taut");
        let a = nl.add_input("a");
        let na = nl.add_gate_named(GateKind::Not, vec![a], "na").unwrap();
        let y = nl.add_gate_named(GateKind::Or, vec![a, na], "y").unwrap();
        nl.add_output(y);
        let res = analyze(&nl);
        assert!(res.constants.contains(&(y, true)));
        assert!(res.is_redundant(y, true));
        assert!(!res.is_redundant(y, false));
    }

    #[test]
    fn conflicting_propagation_is_statically_redundant() {
        // z = AND(a, x) with x = NOT a: activating x s-a-0 needs x=1
        // (hence a=0), but propagating through the AND needs a=1.
        let mut nl = Netlist::new("conf");
        let a = nl.add_input("a");
        let x = nl.add_gate_named(GateKind::Not, vec![a], "x").unwrap();
        let z = nl.add_gate_named(GateKind::And, vec![a, x], "z").unwrap();
        nl.add_output(z);
        let res = analyze(&nl);
        let f = res
            .redundant
            .iter()
            .find(|r| r.net == x && !r.stuck)
            .expect("x s-a-0 proved redundant");
        assert_eq!(f.reason, RedundancyReason::StaticConflict);
    }

    #[test]
    fn clean_circuit_has_no_redundancy() {
        let res = analyze(&suite::c17());
        assert!(res.redundant.is_empty());
        assert!(res.unobservable.is_empty());
        assert!(res.constants.is_empty());
        assert!(res.contradictory.is_empty());
    }

    #[test]
    fn priority_encoder_dangling_inverter_is_caught() {
        // priority_encoder builds nr0 = NOT r0 that no grant term reads:
        // the suite's known pair of untestable faults.
        let nl = suite::priority_encoder(12);
        let res = analyze(&nl);
        let nr0 = nl.find_net("nr0").unwrap();
        assert!(res.is_redundant(nr0, false));
        assert!(res.is_redundant(nr0, true));
        assert_eq!(res.redundant.len(), 2);
    }
}
