//! The implication graph and its closure.
//!
//! Literals are indexed densely: literal `2 * net + value`. The closure
//! is a bit-matrix: row `a` holds every literal implied by `a`
//! (including `a` itself). Rows for the two polarities of one net sit in
//! adjacent bit positions, so "does this row contain a complementary
//! pair?" is a single mask-and-shift per word.

use atpg_easy_netlist::{GateKind, NetId, Netlist};

/// A literal: a net together with an asserted logic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    /// The net the assertion is about.
    pub net: NetId,
    /// The asserted logic value.
    pub value: bool,
}

impl Lit {
    /// Creates a literal asserting `net = value`.
    pub fn new(net: NetId, value: bool) -> Self {
        Lit { net, value }
    }

    /// The opposite assertion on the same net.
    pub fn negate(self) -> Self {
        Lit {
            net: self.net,
            value: !self.value,
        }
    }

    fn index(self) -> usize {
        self.net.index() * 2 + usize::from(self.value)
    }

    fn from_index(i: usize) -> Self {
        Lit {
            net: NetId::from_index(i / 2),
            value: i % 2 == 1,
        }
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}={}", self.net.index(), u8::from(self.value))
    }
}

/// Mask selecting the `value = 0` bit of every literal pair in a word.
const EVEN: u64 = 0x5555_5555_5555_5555;

/// Build statistics, exposed for lint summaries and the bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImplicationStats {
    /// Number of nets analyzed.
    pub nets: usize,
    /// Implication edges read directly off gate semantics.
    pub direct_edges: usize,
    /// Edges added by extended-backward (justification-intersection)
    /// rounds.
    pub extended_edges: usize,
    /// Total implied pairs in the final closure, excluding the trivial
    /// `a ⇒ a` diagonal.
    pub implication_pairs: usize,
    /// Extended-backward rounds executed.
    pub rounds: usize,
    /// Whether the extended-backward iteration reached a fixpoint
    /// (`false` only if the round cap was hit; the closure is still
    /// transitively and contrapositively consistent either way).
    pub fixpoint: bool,
}

/// Static implication engine: for every literal, the set of literals it
/// implies under every input assignment consistent with the premise.
#[derive(Debug, Clone)]
pub struct ImplicationEngine {
    /// Words per closure row.
    stride: usize,
    /// Number of literals (2 × nets).
    lits: usize,
    /// Row-major closure bit-matrix, `lits * stride` words.
    closure: Vec<u64>,
    /// Adjacency lists of explicit edges (direct + contrapositive +
    /// extended); transitive consequences live only in `closure`.
    adj: Vec<Vec<u32>>,
    stats: ImplicationStats,
}

/// Extended-backward rounds are capped so pathological graphs cannot
/// stall the pre-pass; the closure stays sound (just less complete) if
/// the cap is hit. Suite circuits converge in 1–3 rounds.
const MAX_EXTENDED_ROUNDS: usize = 8;

impl ImplicationEngine {
    /// Builds the engine for a netlist: seeds direct implications from
    /// gate semantics, then iterates transitive + contrapositive closure
    /// and extended-backward learning to a fixpoint (or the round cap).
    pub fn build(nl: &Netlist) -> Self {
        let lits = nl.num_nets() * 2;
        let stride = lits.div_ceil(64);
        let mut eng = ImplicationEngine {
            stride,
            lits,
            closure: vec![0; lits * stride],
            adj: vec![Vec::new(); lits],
            stats: ImplicationStats {
                nets: nl.num_nets(),
                direct_edges: 0,
                extended_edges: 0,
                implication_pairs: 0,
                rounds: 0,
                fixpoint: false,
            },
        };
        for i in 0..lits {
            eng.set_bit(i, i);
        }
        eng.seed_direct(nl);
        let mut fixpoint = false;
        for round in 0..MAX_EXTENDED_ROUNDS {
            eng.close_and_contrapose();
            let added = eng.extended_backward(nl);
            eng.stats.extended_edges += added;
            eng.stats.rounds = round + 1;
            if added == 0 {
                fixpoint = true;
                break;
            }
        }
        eng.close_and_contrapose();
        eng.stats.fixpoint = fixpoint;
        eng.stats.implication_pairs = eng.count_pairs();
        eng
    }

    /// Whether asserting `a` forces `b` under every consistent input
    /// assignment the engine could prove.
    pub fn implies(&self, a: Lit, b: Lit) -> bool {
        self.get_bit(a.index(), b.index())
    }

    /// Every literal implied by `a`, excluding `a` itself.
    pub fn implied(&self, a: Lit) -> Vec<Lit> {
        let ai = a.index();
        self.iter_row(ai)
            .filter(|&b| b != ai)
            .map(Lit::from_index)
            .collect()
    }

    /// Whether `a` can hold under no input assignment the engine could
    /// prove consistent: its closure contains a complementary pair.
    pub fn infeasible(&self, a: Lit) -> bool {
        self.row(a.index())
            .iter()
            .any(|&w| w & (w >> 1) & EVEN != 0)
    }

    /// If the net is provably constant, returns the constant value:
    /// exactly one polarity is infeasible.
    pub fn constant(&self, net: NetId) -> Option<bool> {
        let lo = self.infeasible(Lit::new(net, false));
        let hi = self.infeasible(Lit::new(net, true));
        match (lo, hi) {
            (true, false) => Some(true),
            (false, true) => Some(false),
            _ => None,
        }
    }

    /// Whether *both* polarities of the net are infeasible — a genuine
    /// contradiction in the netlist (conflicting constant feedback);
    /// impossible for well-formed combinational circuits.
    pub fn contradictory(&self, net: NetId) -> bool {
        self.infeasible(Lit::new(net, false)) && self.infeasible(Lit::new(net, true))
    }

    /// Whether asserting all of `lits` simultaneously is statically
    /// contradictory: the union of their closures contains a
    /// complementary pair.
    pub fn conflicts(&self, lits: &[Lit]) -> bool {
        let mut acc = vec![0u64; self.stride];
        for l in lits {
            for (a, w) in acc.iter_mut().zip(self.row(l.index())) {
                *a |= w;
            }
        }
        acc.iter().any(|&w| w & (w >> 1) & EVEN != 0)
    }

    /// Build statistics.
    pub fn stats(&self) -> &ImplicationStats {
        &self.stats
    }

    /// Internal consistency audit backing the R004 lint pass. Returns a
    /// list of violated invariants (empty on a healthy engine):
    /// closure rows must be transitively closed, contrapositively
    /// consistent, and reflexive.
    pub fn self_check(&self) -> Vec<String> {
        let mut issues = Vec::new();
        for a in 0..self.lits {
            if !self.get_bit(a, a) {
                issues.push(format!("row {a} lost its reflexive bit"));
            }
            for b in self.iter_row(a) {
                if !self.get_bit(b ^ 1, a ^ 1) {
                    issues.push(format!(
                        "contrapositive missing: {} => {} but not {} => {}",
                        Lit::from_index(a),
                        Lit::from_index(b),
                        Lit::from_index(b ^ 1),
                        Lit::from_index(a ^ 1),
                    ));
                }
                for c in self.iter_row(b) {
                    if !self.get_bit(a, c) {
                        issues.push(format!(
                            "transitivity missing: {} => {} => {}",
                            Lit::from_index(a),
                            Lit::from_index(b),
                            Lit::from_index(c),
                        ));
                    }
                }
            }
            if issues.len() > 16 {
                break; // enough evidence; keep the report bounded
            }
        }
        issues
    }

    fn row(&self, a: usize) -> &[u64] {
        &self.closure[a * self.stride..(a + 1) * self.stride]
    }

    fn set_bit(&mut self, a: usize, b: usize) {
        self.closure[a * self.stride + b / 64] |= 1u64 << (b % 64);
    }

    fn get_bit(&self, a: usize, b: usize) -> bool {
        self.closure[a * self.stride + b / 64] >> (b % 64) & 1 != 0
    }

    fn iter_row(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(a).iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Adds an explicit edge `a ⇒ b` unless the closure already has it.
    fn add_edge(&mut self, a: usize, b: usize) -> bool {
        if self.get_bit(a, b) {
            return false;
        }
        self.set_bit(a, b);
        self.adj[a].push(b as u32);
        true
    }

    fn seed_direct(&mut self, nl: &Netlist) {
        let mut count = 0usize;
        let mut edge = |eng: &mut Self, a: Lit, b: Lit| {
            if eng.add_edge(a.index(), b.index()) {
                count += 1;
            }
        };
        for (_, g) in nl.gates() {
            let o = g.output;
            // Fan-in-1 AND/OR/XOR degenerate to BUF, their inverting
            // duals to NOT; normalize so both directions are direct.
            let kind = match (g.kind, g.fanin()) {
                (GateKind::And | GateKind::Or | GateKind::Xor, 1) => GateKind::Buf,
                (GateKind::Nand | GateKind::Nor | GateKind::Xnor, 1) => GateKind::Not,
                (k, _) => k,
            };
            match kind {
                GateKind::Buf | GateKind::Not => {
                    let inv = kind == GateKind::Not;
                    let i = g.inputs[0];
                    for v in [false, true] {
                        edge(self, Lit::new(i, v), Lit::new(o, v ^ inv));
                        edge(self, Lit::new(o, v ^ inv), Lit::new(i, v));
                    }
                }
                GateKind::Const0 | GateKind::Const1 => {
                    // Encode "o is constant c" as: the opposite literal
                    // implies its own negation, making it infeasible.
                    let c = kind == GateKind::Const1;
                    edge(self, Lit::new(o, !c), Lit::new(o, c));
                }
                GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => {
                    // A controlling input forces the output; the output
                    // away from its controlled value forces every input
                    // to the non-controlling value.
                    let inverting = matches!(kind, GateKind::Nand | GateKind::Nor);
                    let ctrl = matches!(kind, GateKind::Or | GateKind::Nor);
                    let out_at_ctrl = ctrl ^ inverting;
                    for &i in &g.inputs {
                        edge(self, Lit::new(i, ctrl), Lit::new(o, out_at_ctrl));
                        edge(self, Lit::new(o, !out_at_ctrl), Lit::new(i, !ctrl));
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Parity gates have no controlling value: no
                    // single-premise direct implications at fan-in ≥ 2.
                }
            }
        }
        self.stats.direct_edges = count;
    }

    /// Iterates transitive closure over the explicit edges and the
    /// contrapositive completion until neither adds a bit. Terminates:
    /// both passes only ever set bits, and the matrix has `lits²` of
    /// them.
    fn close_and_contrapose(&mut self) {
        loop {
            self.sweep_transitive();
            if !self.contrapose() {
                break;
            }
        }
    }

    /// Repeated sweeps of `row(a) |= row(b)` for every explicit edge
    /// `a ⇒ b` until stable.
    fn sweep_transitive(&mut self) {
        loop {
            let mut changed = false;
            for a in 0..self.lits {
                for bi in 0..self.adj[a].len() {
                    let b = self.adj[a][bi] as usize;
                    if a != b {
                        changed |= self.or_row_into(a, b);
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// `row(a) |= row(b)`; rows are disjoint slices of the flat matrix,
    /// split at whichever row starts later.
    fn or_row_into(&mut self, a: usize, b: usize) -> bool {
        let s = self.stride;
        let (dst_start, src_start) = (a * s, b * s);
        let (dst, src) = if dst_start < src_start {
            let (head, tail) = self.closure.split_at_mut(src_start);
            (&mut head[dst_start..dst_start + s], &tail[..s])
        } else {
            let (head, tail) = self.closure.split_at_mut(dst_start);
            (&mut tail[..s], &head[src_start..src_start + s])
        };
        let mut changed = false;
        for (x, y) in dst.iter_mut().zip(src) {
            let next = *x | *y;
            changed |= next != *x;
            *x = next;
        }
        changed
    }

    /// For every closure pair `a ⇒ b`, ensure `¬b ⇒ ¬a`.
    fn contrapose(&mut self) -> bool {
        let mut changed = false;
        for a in 0..self.lits {
            let implied: Vec<usize> = self.iter_row(a).collect();
            for b in implied {
                if b != a && self.add_edge(b ^ 1, a ^ 1) {
                    changed = true;
                }
            }
        }
        changed
    }

    /// Extended backward implications: for an unjustified gate
    /// assignment (e.g. AND output at 0) every justification (some
    /// input at 0) is possible, so anything implied by *all*
    /// justifications is implied by the assignment itself. Returns the
    /// number of edges added.
    fn extended_backward(&mut self, nl: &Netlist) -> usize {
        let mut added = 0usize;
        let mut common = vec![0u64; self.stride];
        for (_, g) in nl.gates() {
            if g.fanin() < 2 {
                continue;
            }
            // (unjustified output literal, justification value on inputs)
            let (out_val, just_val) = match g.kind {
                GateKind::And => (false, false),
                GateKind::Or => (true, true),
                GateKind::Nand => (true, false),
                GateKind::Nor => (false, true),
                // Parity justifications assign several inputs at once;
                // out of scope for single-literal intersection.
                _ => continue,
            };
            let u = Lit::new(g.output, out_val).index();
            // Intersect over *feasible* justifications only: an
            // infeasible one can never be the reason the assignment
            // holds. If none is feasible the assignment itself is
            // infeasible.
            common.fill(!0);
            let mut feasible = 0usize;
            for &i in &g.inputs {
                let j = Lit::new(i, just_val);
                if self.infeasible(j) {
                    continue;
                }
                feasible += 1;
                let row = j.index() * self.stride;
                for (c, wi) in common.iter_mut().enumerate() {
                    *wi &= self.closure[row + c];
                }
            }
            if feasible == 0 {
                if self.add_edge(u, u ^ 1) {
                    added += 1;
                }
                continue;
            }
            let lits: Vec<usize> = common
                .iter()
                .enumerate()
                .flat_map(|(wi, &w)| {
                    let mut w = w;
                    std::iter::from_fn(move || {
                        if w == 0 {
                            return None;
                        }
                        let bit = w.trailing_zeros() as usize;
                        w &= w - 1;
                        Some(wi * 64 + bit)
                    })
                })
                .collect();
            for b in lits {
                if b != u && self.add_edge(u, b) {
                    added += 1;
                }
            }
        }
        added
    }

    fn count_pairs(&self) -> usize {
        let total: u32 = self.closure.iter().map(|w| w.count_ones()).sum();
        total as usize - self.lits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_netlist::Netlist;

    fn and2() -> (Netlist, NetId, NetId, NetId) {
        let mut nl = Netlist::new("and2");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let o = nl.add_gate_named(GateKind::And, vec![a, b], "o").unwrap();
        nl.add_output(o);
        (nl, a, b, o)
    }

    #[test]
    fn direct_and_implications() {
        let (nl, a, b, o) = and2();
        let eng = ImplicationEngine::build(&nl);
        assert!(eng.implies(Lit::new(a, false), Lit::new(o, false)));
        assert!(eng.implies(Lit::new(o, true), Lit::new(a, true)));
        assert!(eng.implies(Lit::new(o, true), Lit::new(b, true)));
        // Contrapositive of a=0 => o=0.
        assert!(eng.implies(Lit::new(o, true), Lit::new(a, true)));
        // No implication invents facts: a=1 alone decides nothing.
        assert!(!eng.implies(Lit::new(a, true), Lit::new(o, true)));
        assert!(!eng.infeasible(Lit::new(o, false)));
    }

    #[test]
    fn inverter_chain_is_bidirectional() {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let x = nl.add_gate_named(GateKind::Not, vec![a], "x").unwrap();
        let y = nl.add_gate_named(GateKind::Not, vec![x], "y").unwrap();
        nl.add_output(y);
        let eng = ImplicationEngine::build(&nl);
        assert!(eng.implies(Lit::new(a, true), Lit::new(y, true)));
        assert!(eng.implies(Lit::new(y, false), Lit::new(a, false)));
        assert!(eng.implies(Lit::new(x, true), Lit::new(y, false)));
    }

    #[test]
    fn constant_propagates() {
        let mut nl = Netlist::new("konst");
        let a = nl.add_input("a");
        let z = nl.add_gate_named(GateKind::Const0, vec![], "z").unwrap();
        let o = nl.add_gate_named(GateKind::Or, vec![a, z], "o").unwrap();
        let p = nl.add_gate_named(GateKind::And, vec![a, z], "p").unwrap();
        nl.add_output(o);
        nl.add_output(p);
        let eng = ImplicationEngine::build(&nl);
        assert_eq!(eng.constant(z), Some(false));
        // AND with a constant-0 leg is itself constant 0.
        assert_eq!(eng.constant(p), Some(false));
        // OR with a constant-0 leg tracks the live leg both ways
        // (extended backward: o=1 has a single feasible justification).
        assert!(eng.implies(Lit::new(o, true), Lit::new(a, true)));
        assert_eq!(eng.constant(o), None);
        assert!(!eng.contradictory(o));
    }

    #[test]
    fn extended_backward_learns_convergent_fact() {
        // x = AND(a, b); y = OR(x1, x2) where x1 = BUF(x), x2 = BUF(x):
        // both justifications of y=1 imply x=1, hence a=1 and b=1.
        let mut nl = Netlist::new("ext");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate_named(GateKind::And, vec![a, b], "x").unwrap();
        let x1 = nl.add_gate_named(GateKind::Buf, vec![x], "x1").unwrap();
        let x2 = nl.add_gate_named(GateKind::Buf, vec![x], "x2").unwrap();
        let y = nl.add_gate_named(GateKind::Or, vec![x1, x2], "y").unwrap();
        nl.add_output(y);
        let eng = ImplicationEngine::build(&nl);
        assert!(eng.implies(Lit::new(y, true), Lit::new(a, true)));
        assert!(eng.implies(Lit::new(y, true), Lit::new(b, true)));
        assert!(eng.stats().fixpoint);
    }

    #[test]
    fn tautology_net_is_constant_one() {
        // y = OR(a, NOT a) is constant 1 — the canonical statically
        // redundant structure used across the atpg test-suite.
        let mut nl = Netlist::new("taut");
        let a = nl.add_input("a");
        let na = nl.add_gate_named(GateKind::Not, vec![a], "na").unwrap();
        let y = nl.add_gate_named(GateKind::Or, vec![a, na], "y").unwrap();
        nl.add_output(y);
        let eng = ImplicationEngine::build(&nl);
        assert_eq!(eng.constant(y), Some(true));
        assert!(eng.infeasible(Lit::new(y, false)));
    }

    #[test]
    fn conflict_union_detects_incompatible_assignment() {
        let (nl, a, _, o) = and2();
        let eng = ImplicationEngine::build(&nl);
        assert!(eng.conflicts(&[Lit::new(o, true), Lit::new(a, false)]));
        assert!(!eng.conflicts(&[Lit::new(o, true), Lit::new(a, true)]));
    }

    #[test]
    fn self_check_is_clean_on_suite_style_circuit() {
        let mut nl = Netlist::new("mix");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.add_gate_named(GateKind::Nand, vec![a, b], "x").unwrap();
        let y = nl.add_gate_named(GateKind::Nor, vec![x, c], "y").unwrap();
        let z = nl.add_gate_named(GateKind::Xor, vec![x, y], "z").unwrap();
        nl.add_output(z);
        let eng = ImplicationEngine::build(&nl);
        assert!(eng.self_check().is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let (nl, ..) = and2();
        let eng = ImplicationEngine::build(&nl);
        let s = eng.stats();
        assert_eq!(s.nets, 3);
        assert!(s.direct_edges >= 4);
        assert!(s.implication_pairs >= s.direct_edges);
        assert!(s.fixpoint);
    }
}
