//! SCOAP-style testability measures.
//!
//! Controllability `CC0`/`CC1` (effort to set a net to 0/1, computed
//! forward in topological order; primary inputs cost 1) and
//! observability `CO` (effort to propagate a net's value to a primary
//! output, computed backward; outputs cost 0). All arithmetic saturates
//! at [`SCOAP_INFINITY`], which also marks structurally impossible
//! goals: the unreachable polarity of a constant net, or a net with no
//! path to any output.

use atpg_easy_netlist::topo::topo_order;
use atpg_easy_netlist::{GateKind, NetId, Netlist};

/// Saturation bound for SCOAP scores; a score at this value means the
/// goal is structurally impossible (or beyond any realistic budget).
pub const SCOAP_INFINITY: u32 = u32::MAX / 4;

fn sat_add(a: u32, b: u32) -> u32 {
    a.saturating_add(b).min(SCOAP_INFINITY)
}

/// SCOAP controllability/observability scores for every net.
#[derive(Debug, Clone)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

impl Scoap {
    /// Computes scores for a validated netlist. Gates are visited in
    /// topological order (creation order as a fallback on cyclic input,
    /// where the scores for cycle nets stay saturated).
    pub fn build(nl: &Netlist) -> Self {
        let order = topo_order(nl).unwrap_or_else(|_| nl.gate_ids().collect());
        let n = nl.num_nets();
        let mut cc0 = vec![SCOAP_INFINITY; n];
        let mut cc1 = vec![SCOAP_INFINITY; n];
        for &i in nl.inputs() {
            cc0[i.index()] = 1;
            cc1[i.index()] = 1;
        }
        for &gid in &order {
            let g = nl.gate(gid);
            let (c0, c1) = gate_controllability(g.kind, &g.inputs, &cc0, &cc1);
            cc0[g.output.index()] = c0;
            cc1[g.output.index()] = c1;
        }

        let mut co = vec![SCOAP_INFINITY; n];
        for &o in nl.outputs() {
            co[o.index()] = 0;
        }
        for &gid in order.iter().rev() {
            let g = nl.gate(gid);
            let out_co = co[g.output.index()];
            if out_co >= SCOAP_INFINITY {
                continue;
            }
            for (pos, &i) in g.inputs.iter().enumerate() {
                let side: u32 = g
                    .inputs
                    .iter()
                    .enumerate()
                    .filter(|&(q, _)| q != pos)
                    .map(|(_, &j)| match g.kind {
                        GateKind::And | GateKind::Nand => cc1[j.index()],
                        GateKind::Or | GateKind::Nor => cc0[j.index()],
                        GateKind::Xor | GateKind::Xnor => cc0[j.index()].min(cc1[j.index()]),
                        GateKind::Not | GateKind::Buf | GateKind::Const0 | GateKind::Const1 => 0,
                    })
                    .fold(0u32, sat_add);
                let through = sat_add(sat_add(out_co, side), 1);
                let slot = &mut co[i.index()];
                *slot = (*slot).min(through);
            }
        }
        Scoap { cc0, cc1, co }
    }

    /// Effort to set `net` to 0.
    pub fn cc0(&self, net: NetId) -> u32 {
        self.cc0[net.index()]
    }

    /// Effort to set `net` to 1.
    pub fn cc1(&self, net: NetId) -> u32 {
        self.cc1[net.index()]
    }

    /// Effort to propagate `net` to a primary output.
    pub fn co(&self, net: NetId) -> u32 {
        self.co[net.index()]
    }

    /// Combined testability of the harder stuck-at fault on `net`:
    /// detecting s-a-v needs the net driven to ¬v *and* observed.
    pub fn fault_effort(&self, net: NetId) -> u32 {
        sat_add(
            self.cc0[net.index()].max(self.cc1[net.index()]),
            self.co[net.index()],
        )
    }
}

fn gate_controllability(kind: GateKind, inputs: &[NetId], cc0: &[u32], cc1: &[u32]) -> (u32, u32) {
    let c0 = |n: NetId| cc0[n.index()];
    let c1 = |n: NetId| cc1[n.index()];
    match kind {
        GateKind::And => (
            inputs
                .iter()
                .map(|&i| c0(i))
                .min()
                .map_or(0, |m| sat_add(m, 1)),
            sat_add(inputs.iter().map(|&i| c1(i)).fold(0, sat_add), 1),
        ),
        GateKind::Or => (
            sat_add(inputs.iter().map(|&i| c0(i)).fold(0, sat_add), 1),
            inputs
                .iter()
                .map(|&i| c1(i))
                .min()
                .map_or(0, |m| sat_add(m, 1)),
        ),
        GateKind::Nand => (
            sat_add(inputs.iter().map(|&i| c1(i)).fold(0, sat_add), 1),
            inputs
                .iter()
                .map(|&i| c0(i))
                .min()
                .map_or(0, |m| sat_add(m, 1)),
        ),
        GateKind::Nor => (
            inputs
                .iter()
                .map(|&i| c1(i))
                .min()
                .map_or(0, |m| sat_add(m, 1)),
            sat_add(inputs.iter().map(|&i| c0(i)).fold(0, sat_add), 1),
        ),
        GateKind::Xor | GateKind::Xnor => {
            // Cheapest even- and odd-parity assignments over the fan-in.
            let (mut even, mut odd) = (0u32, SCOAP_INFINITY);
            for &i in inputs {
                let (e, o) = (even, odd);
                even = sat_add(e, c0(i)).min(sat_add(o, c1(i)));
                odd = sat_add(e, c1(i)).min(sat_add(o, c0(i)));
            }
            if kind == GateKind::Xor {
                (sat_add(even, 1), sat_add(odd, 1))
            } else {
                (sat_add(odd, 1), sat_add(even, 1))
            }
        }
        GateKind::Not => (sat_add(c1(inputs[0]), 1), sat_add(c0(inputs[0]), 1)),
        GateKind::Buf => (sat_add(c0(inputs[0]), 1), sat_add(c1(inputs[0]), 1)),
        GateKind::Const0 => (1, SCOAP_INFINITY),
        GateKind::Const1 => (SCOAP_INFINITY, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg_easy_netlist::Netlist;

    #[test]
    fn and_gate_scores() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let o = nl.add_gate_named(GateKind::And, vec![a, b], "o").unwrap();
        nl.add_output(o);
        let s = Scoap::build(&nl);
        assert_eq!(s.cc0(o), 2); // cheapest input at 0, +1
        assert_eq!(s.cc1(o), 3); // both inputs at 1, +1
        assert_eq!(s.co(o), 0);
        assert_eq!(s.co(a), 2); // through the AND: side input at 1, +1
    }

    #[test]
    fn unobservable_net_saturates() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let dangling = nl.add_gate_named(GateKind::Not, vec![a], "d").unwrap();
        let o = nl.add_gate_named(GateKind::Buf, vec![a], "o").unwrap();
        nl.add_output(o);
        let s = Scoap::build(&nl);
        assert_eq!(s.co(dangling), SCOAP_INFINITY);
        assert!(s.co(a) < SCOAP_INFINITY);
        assert_eq!(s.fault_effort(dangling), SCOAP_INFINITY);
    }

    #[test]
    fn constants_have_one_sided_controllability() {
        let mut nl = Netlist::new("t");
        let k = nl.add_gate_named(GateKind::Const1, vec![], "k").unwrap();
        let o = nl.add_gate_named(GateKind::Buf, vec![k], "o").unwrap();
        nl.add_output(o);
        let s = Scoap::build(&nl);
        assert_eq!(s.cc1(k), 1);
        assert_eq!(s.cc0(k), SCOAP_INFINITY);
        assert_eq!(s.cc0(o), SCOAP_INFINITY);
    }

    #[test]
    fn xor_parity_dp() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let o = nl.add_gate_named(GateKind::Xor, vec![a, b], "o").unwrap();
        nl.add_output(o);
        let s = Scoap::build(&nl);
        assert_eq!(s.cc1(o), 3); // one input 1, the other 0, +1
        assert_eq!(s.cc0(o), 3); // both equal, +1
        assert_eq!(s.co(a), 2); // side input at its cheaper value, +1
    }
}
