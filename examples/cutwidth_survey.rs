//! A miniature Figure-8 survey: estimate the cut-width of every fault's
//! subcircuit for a few contrasting circuit families and fit the growth
//! models — trees stay logarithmic, the array multiplier goes √n.
//!
//! ```text
//! cargo run --release --example cutwidth_survey
//! ```

use atpg_easy::analysis::experiment::{fig8_scatter, figure8, Figure8Config};
use atpg_easy::analysis::{predictor, report};
use atpg_easy::circuits::suite::NamedCircuit;
use atpg_easy::circuits::{adders, multiplier, parity};

/// Slowly-growing width: the log model wins outright, or a power law wins
/// with a small exponent (over finite ranges `a·x^b` with `b ≪ 1` and
/// `a·ln x + c` are nearly indistinguishable — the paper's own
/// least-squares methodology, Section 5.2.2).
fn grows_slowly(c: &atpg_easy::analysis::predictor::WidthClassification) -> bool {
    use atpg_easy::fit::Model;
    match c.best.model {
        Model::Logarithmic => true,
        Model::Power => c.best.b < 0.35,
        Model::Linear => false,
    }
}

fn survey(title: &str, circuits: Vec<NamedCircuit>) {
    println!("== {title} ==");
    let points = figure8(
        &circuits,
        &Figure8Config {
            max_faults_per_circuit: Some(80),
            ..Figure8Config::default()
        },
    );
    let scatter = fig8_scatter(&points);
    match predictor::classify(&scatter) {
        None => println!("  (not enough data)"),
        Some(c) => {
            println!("  best fit: {}", c.best);
            println!(
                "  width grows slowly (log-like): {}{}",
                grows_slowly(&c),
                c.log2_coefficient()
                    .map(|k| format!("  (W ≈ {k:.2}·log₂ size)"))
                    .unwrap_or_default()
            );
        }
    }
    print!("{}", report::ascii_scatter(&scatter, 64, 10));
    println!();
}

fn main() {
    // Tree-like families: expect logarithmic width.
    survey(
        "parity trees + ripple adders (tree-like)",
        vec![
            NamedCircuit {
                name: "par16".into(),
                netlist: parity::parity_tree(16),
            },
            NamedCircuit {
                name: "par64".into(),
                netlist: parity::parity_tree(64),
            },
            NamedCircuit {
                name: "par512".into(),
                netlist: parity::parity_tree(512),
            },
            NamedCircuit {
                name: "rca8".into(),
                netlist: adders::ripple_carry(8),
            },
            NamedCircuit {
                name: "rca96".into(),
                netlist: adders::ripple_carry(96),
            },
        ],
    );
    // A 2-D array: expect power-law (≈ √n) width — the C6288 effect.
    survey(
        "array multipliers (2-D)",
        vec![
            NamedCircuit {
                name: "mul4".into(),
                netlist: multiplier::array_multiplier(4),
            },
            NamedCircuit {
                name: "mul6".into(),
                netlist: multiplier::array_multiplier(6),
            },
            NamedCircuit {
                name: "mul8".into(),
                netlist: multiplier::array_multiplier(8),
            },
        ],
    );
}
