//! Load a real netlist file (ISCAS85 `.bench` or BLIF), clean it, map it
//! to ≤3-input AND/OR gates, and run the full paper pipeline on it:
//! ATPG campaign, cut-width estimate, and the Theorem-4.1 ledger.
//!
//! ```text
//! cargo run --release --example load_bench -- path/to/c432.bench
//! cargo run --release --example load_bench            # falls back to c17
//! ```
//!
//! Drop genuine MCNC91/ISCAS85 files in to reproduce the paper's
//! experiments on the original circuits.

use atpg_easy::analysis::{analysis, predictor};
use atpg_easy::atpg::campaign::{run, AtpgConfig};
use atpg_easy::circuits::suite;
use atpg_easy::cutwidth::mla::MlaConfig;
use atpg_easy::cutwidth::{mla, Hypergraph};
use atpg_easy::netlist::{decompose, parser, stats::CircuitStats, sweep, Netlist};

fn load(path: &str) -> Result<Netlist, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let nl = if path.ends_with(".blif") {
        parser::blif::parse(&text)?
    } else {
        parser::bench::parse(&text)?
    };
    Ok(nl)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let raw = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading {path}");
            load(&path)?
        }
        None => {
            println!("no file given; using the embedded ISCAS85 c17");
            suite::c17()
        }
    };
    println!("raw:       {}", CircuitStats::of(&raw));

    let (clean, report) = sweep::sweep(&raw)?;
    println!(
        "swept:     {} ({} const folds, {} buffers, {} dead gates)",
        CircuitStats::of(&clean),
        report.constants_folded,
        report.buffers_collapsed,
        report.dead_gates_removed
    );
    let nl = decompose::decompose(&clean, 3)?;
    println!("decomposed: {}", CircuitStats::of(&nl));

    // Cut-width of the whole circuit (the paper's Figure-8 statistic).
    let h = Hypergraph::from_netlist(&nl);
    let (w, _) = mla::estimate_cutwidth(&h, &MlaConfig::default());
    println!(
        "estimated cut-width: {w}  ({} hypergraph nodes; log2 = {:.1})",
        h.num_nodes(),
        (h.num_nodes() as f64).log2()
    );

    // ATPG campaign.
    let result = run(
        &nl,
        &AtpgConfig {
            random_patterns: 128,
            ..AtpgConfig::default()
        },
    );
    println!(
        "ATPG: {} faults, coverage {:.2}%, {} untestable, {} SAT instances",
        result.records.len(),
        100.0 * result.coverage(),
        result.untestable(),
        result.sat_records().count()
    );

    // Per-fault Theorem-4.1 ledger on a sample.
    let ledger = analysis::analyze_circuit(&nl, &MlaConfig::default(), 8, 5_000_000);
    let within = ledger.iter().filter(|a| a.within_bound()).count();
    println!(
        "Theorem 4.1 ledger: {}/{} sampled instances within bound",
        within,
        ledger.len()
    );
    let scatter: Vec<(f64, f64)> = ledger
        .iter()
        .map(|a| (a.sub_size as f64, a.w_miter as f64))
        .collect();
    if let Some(c) = predictor::classify(&scatter) {
        println!("width-vs-size best fit: {}", c.best);
    }
    Ok(())
}
