//! Quickstart: build a small circuit, generate a test for a stuck-at
//! fault with SAT-based ATPG, and verify it by fault simulation.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use atpg_easy::atpg::{miter, verify, Fault};
use atpg_easy::cnf::circuit;
use atpg_easy::netlist::{GateKind, Netlist};
use atpg_easy::sat::{Cdcl, Outcome, Solver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-bit AND-OR circuit: y = (a AND b) OR (c AND d).
    let mut nl = Netlist::new("quickstart");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let c = nl.add_input("c");
    let d = nl.add_input("d");
    let ab = nl.add_gate_named(GateKind::And, vec![a, b], "ab")?;
    let cd = nl.add_gate_named(GateKind::And, vec![c, d], "cd")?;
    let y = nl.add_gate_named(GateKind::Or, vec![ab, cd], "y")?;
    nl.add_output(y);
    nl.validate()?;
    println!("{nl}");

    // Target: net `ab` stuck at 1. Build the paper's C_psi^ATPG miter and
    // pose CIRCUIT-SAT on it (Larrabee's formulation).
    let fault = Fault::stuck_at_1(ab);
    let m = miter::build(&nl, fault);
    println!(
        "miter for {}: {} gates, {} nets (C_psi^sub has {} nets)",
        fault.describe(&nl),
        m.circuit.num_gates(),
        m.circuit.num_nets(),
        m.sub_size()
    );

    let mut enc = circuit::encode(&m.circuit)?;
    if let Some(activation) = miter::activation_clause(&m, &enc) {
        enc.formula.add_clause(activation);
    }
    println!(
        "ATPG-SAT instance: {} variables, {} clauses",
        enc.formula.num_vars(),
        enc.formula.num_clauses()
    );

    let solution = Cdcl::new().solve(&enc.formula);
    match solution.outcome {
        Outcome::Sat(model) => {
            let vector = m.extract_test(&enc, &model, &nl);
            println!(
                "test vector: a={} b={} c={} d={}",
                vector[0], vector[1], vector[2], vector[3]
            );
            assert!(verify::detects(&nl, fault, &vector));
            println!("verified by good/faulty simulation ({})", solution.stats);
        }
        Outcome::Unsat => println!("fault is untestable (redundant logic)"),
        Outcome::Aborted => println!("solver budget exhausted"),
    }
    Ok(())
}
