//! The paper's worked example, end to end (Figures 4–7).
//!
//! Builds the circuit of Figure 4(a), prints its CIRCUIT-SAT formula
//! (Formula 4.1), runs the caching-based backtracking of Figure 5 under
//! the paper's ordering A, compares the cut-widths of two orderings
//! (Figure 6), and mechanically checks the Lemma-4.2 bound on the ATPG
//! circuit of Figure 4(b)/7 for the stuck-at-1 fault on net `f`.
//!
//! ```text
//! cargo run --example paper_example
//! ```

use atpg_easy::analysis::{lemma42, varorder};
use atpg_easy::atpg::Fault;
use atpg_easy::cnf::circuit;
use atpg_easy::cutwidth::{ordering, Hypergraph};
use atpg_easy::netlist::{GateKind, Netlist};
use atpg_easy::sat::{CachingBacktracking, SimpleBacktracking, Solver};

/// Figure 4(a): f = OR(b, ¬c), g = NAND(d, e), h = AND(a, f),
/// i = AND(h, g); output i.
fn fig4a() -> Result<Netlist, Box<dyn std::error::Error>> {
    let mut nl = Netlist::new("fig4a");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let c = nl.add_input("c");
    let d = nl.add_input("d");
    let e = nl.add_input("e");
    let cn = nl.add_gate_named(GateKind::Not, vec![c], "c_n")?;
    let f = nl.add_gate_named(GateKind::Or, vec![b, cn], "f")?;
    let g = nl.add_gate_named(GateKind::Nand, vec![d, e], "g")?;
    let h = nl.add_gate_named(GateKind::And, vec![a, f], "h")?;
    let i = nl.add_gate_named(GateKind::And, vec![h, g], "i")?;
    nl.add_output(i);
    nl.validate()?;
    Ok(nl)
}

/// A hypergraph node ordering given by net names (each name stands for
/// the node driving that net), with the output terminal appended.
fn node_order_by_names(nl: &Netlist, names: &[&str]) -> Vec<usize> {
    let g = nl.num_gates();
    let mut order = Vec::new();
    for name in names {
        let net = nl.find_net(name).expect("known net name");
        match nl.net(net).driver {
            Some(gid) => order.push(gid.index()),
            None => {
                let pos = nl
                    .inputs()
                    .iter()
                    .position(|&x| x == net)
                    .expect("undriven nets are inputs");
                order.push(g + pos);
            }
        }
    }
    // Output terminals go last.
    for t in 0..nl.num_outputs() {
        order.push(g + nl.num_inputs() + t);
    }
    order
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nl = fig4a()?;
    println!("Figure 4(a) circuit:\n{nl}");

    // Formula 4.1: the CIRCUIT-SAT encoding (one variable per net, the
    // Figure-2 clause template per gate, plus the output clause).
    let enc = circuit::encode(&nl)?;
    println!(
        "Formula 4.1 analogue: {} variables, {} clauses\n{}\n",
        enc.formula.num_vars(),
        enc.formula.num_clauses(),
        enc.formula
    );

    // Figure 6: cut-width under ordering A (the paper's good ordering) vs
    // an interleaved ordering B.
    let h = Hypergraph::from_netlist(&nl);
    let order_a = node_order_by_names(&nl, &["b", "c", "c_n", "f", "a", "h", "d", "e", "g", "i"]);
    let order_b = node_order_by_names(&nl, &["a", "d", "b", "e", "c", "c_n", "g", "f", "h", "i"]);
    let w_a = ordering::cutwidth(&h, &order_a);
    let w_b = ordering::cutwidth(&h, &order_b);
    println!("Figure 6: W(C, A) = {w_a}, W(C, B) = {w_b} (A is the better ordering)");
    assert!(w_a < w_b);

    // Figure 5: caching-based backtracking under ordering A's variable
    // order, versus plain backtracking — with the backtracking tree
    // rendered the way the paper draws it.
    let var_order = varorder::variable_order(&nl, &order_a);
    let mut traced = CachingBacktracking::new()
        .with_order(var_order.clone())
        .with_trace();
    let cached = traced.solve(&enc.formula);
    println!("Figure 5: the backtracking tree under ordering A:");
    print!("{}", atpg_easy::sat::render_trace(traced.trace()));
    let simple = SimpleBacktracking::new()
        .with_order(var_order)
        .solve(&enc.formula);
    println!(
        "Figure 5: caching backtracking explored {} nodes ({} cache hits); simple explored {}",
        cached.stats.nodes, cached.stats.cache_hits, simple.stats.nodes
    );
    assert!(cached.outcome.is_sat(), "Formula 4.1 is satisfiable");

    // Figures 4(b)/7 and Lemma 4.2: the ATPG circuit for f stuck-at-1 has
    // a derived ordering within 2·W(C,A) + 2.
    let f_net = nl.find_net("f").expect("f exists");
    let check = lemma42::check(&nl, Fault::stuck_at_1(f_net), &order_a)
        .expect("the fault reaches the output");
    println!(
        "Figure 7 / Lemma 4.2: W(C_psi^ATPG, A') = {} <= 2*{} + 2 = {}  [{}]",
        check.w_miter,
        check.w_circuit,
        check.bound,
        if check.holds() { "holds" } else { "VIOLATED" }
    );
    assert!(check.holds());
    Ok(())
}
