//! A production-style ATPG campaign: random-pattern seeding, fault
//! collapsing and dropping, CDCL-backed ATPG-SAT, coverage report.
//!
//! ```text
//! cargo run --release --example atpg_campaign
//! ```

use atpg_easy::atpg::campaign::{compact_tests, run, AtpgConfig, FaultOutcome};
use atpg_easy::atpg::fault;
use atpg_easy::circuits::{alu, suite};
use atpg_easy::netlist::decompose;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (name, raw) in [
        ("c17 (genuine ISCAS85)", suite::c17()),
        ("alu8 (C880-like)", alu::alu(8)),
        ("prio27 (C432-like)", suite::priority_encoder(27)),
    ] {
        // The paper's pre-pass: map to at-most-3-input AND/OR + inverters.
        let nl = decompose::decompose(&raw, 3)?;
        let result = run(
            &nl,
            &AtpgConfig {
                random_patterns: 128,
                ..AtpgConfig::default()
            },
        );
        let sat_calls = result.sat_records().count();
        let by_sim = result
            .records
            .iter()
            .filter(|r| r.outcome == FaultOutcome::DetectedBySimulation)
            .count();
        println!("== {name} ==");
        println!(
            "  {} collapsed faults: {} detected ({} by simulation alone), {} untestable, {} aborted",
            result.records.len(),
            result.detected(),
            by_sim,
            result.untestable(),
            result.aborted()
        );
        println!(
            "  coverage {:.2}%  |  {} SAT instances, {} test vectors",
            100.0 * result.coverage(),
            sat_calls,
            result.tests.len()
        );
        let compacted = compact_tests(&nl, &result.tests, &fault::collapse(&nl));
        println!(
            "  static compaction: {} -> {} vectors (same coverage)",
            result.tests.len(),
            compacted.len()
        );
        if let Some(worst) = result.sat_records().max_by_key(|r| r.stats.decisions) {
            println!(
                "  hardest instance: {} ({} vars, {} decisions, {:?})",
                worst.fault.describe(&nl),
                worst.sat_vars,
                worst.stats.decisions,
                worst.solve_time
            );
        }
    }
    Ok(())
}
